"""Unit tests for repro.core.analysis (the paper's closed forms)."""

import numpy as np
import pytest

from repro.core.analysis import (
    completion_rate_prediction,
    counter_individual_latency,
    counter_system_latency,
    counter_system_latency_asymptotic,
    min_to_max_progress_bound,
    parallel_individual_latency,
    parallel_system_latency,
    scu_individual_latency_bound,
    scu_system_latency_bound,
    scu_worst_case_system_latency,
    unbounded_winner_monopoly_probability,
    worst_case_completion_rate,
)


class TestSCUBounds:
    def test_formula(self):
        assert scu_system_latency_bound(3, 2, 16, alpha=4.0) == pytest.approx(
            3 + 4 * 2 * 4
        )

    def test_individual_is_n_times_system(self):
        q, s, n = 2, 3, 25
        assert scu_individual_latency_bound(q, s, n) == pytest.approx(
            n * scu_system_latency_bound(q, s, n)
        )

    def test_worst_case_linear_in_n(self):
        assert scu_worst_case_system_latency(1, 2, 10) == 21.0

    def test_validation(self):
        with pytest.raises(ValueError):
            scu_system_latency_bound(-1, 1, 4)
        with pytest.raises(ValueError):
            scu_system_latency_bound(0, 0, 4)
        with pytest.raises(ValueError):
            scu_system_latency_bound(0, 1, 0)


class TestParallel:
    def test_lemma11_values(self):
        assert parallel_system_latency(7) == 7.0
        assert parallel_individual_latency(7, 4) == 28.0

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_system_latency(0)
        with pytest.raises(ValueError):
            parallel_individual_latency(3, 0)


class TestCounter:
    def test_small_values_by_hand(self):
        # n=2: Z(0)=1, Z(1)=1+1/2 = 1.5
        assert counter_system_latency(2) == pytest.approx(1.5)
        # n=3: Z(1)=1+1/3, Z(2)=1+(2/3)(4/3)=17/9
        assert counter_system_latency(3) == pytest.approx(17 / 9)

    def test_bounded_by_two_sqrt_n(self):
        for n in (2, 10, 100, 1000, 10_000):
            assert counter_system_latency(n) <= 2 * np.sqrt(n)

    def test_asymptotic_converges(self):
        # Z(n-1) / sqrt(pi n / 2) -> 1.
        n = 1_000_000
        ratio = counter_system_latency(n) / np.sqrt(np.pi * n / 2)
        assert ratio == pytest.approx(1.0, abs=1e-3)

    def test_asymptotic_formula_close_at_moderate_n(self):
        for n in (50, 500):
            assert counter_system_latency_asymptotic(n) == pytest.approx(
                counter_system_latency(n), rel=0.01
            )

    def test_individual_is_n_times_system(self):
        n = 64
        assert counter_individual_latency(n) == pytest.approx(
            n * counter_system_latency(n)
        )


class TestCompletionRates:
    def test_prediction_scaled_to_first_point(self):
        pred = completion_rate_prediction([4, 16, 64], measured_first=0.2)
        assert pred[0] == pytest.approx(0.2)
        # 1/sqrt(n) shape: quadrupling n halves the rate.
        assert pred[1] == pytest.approx(0.1)
        assert pred[2] == pytest.approx(0.05)

    def test_worst_case_is_one_over_n(self):
        assert np.allclose(worst_case_completion_rate([2, 4]), [0.5, 0.25])

    def test_validation(self):
        with pytest.raises(ValueError):
            completion_rate_prediction([], measured_first=0.5)
        with pytest.raises(ValueError):
            completion_rate_prediction([2], measured_first=0.0)
        with pytest.raises(ValueError):
            worst_case_completion_rate([0])


class TestTheorem3Bound:
    def test_formula(self):
        assert min_to_max_progress_bound(0.5, 3) == pytest.approx(8.0)

    def test_uniform_scheduler_case(self):
        # theta = 1/n: bound is n**T.
        assert min_to_max_progress_bound(1 / 4, 2) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_to_max_progress_bound(0.0, 2)
        with pytest.raises(ValueError):
            min_to_max_progress_bound(0.5, 0)


class TestLemma2Bound:
    def test_monotone_in_n(self):
        probs = [unbounded_winner_monopoly_probability(n) for n in (2, 4, 8, 16)]
        assert probs == sorted(probs)

    def test_close_to_one_for_large_n(self):
        assert unbounded_winner_monopoly_probability(30) > 1 - 1e-12
