"""Tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench.formats import format_series, format_table
from repro.bench.harness import Experiment, ExperimentRegistry, Series


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].replace(" ", "").startswith("-")
        # Right-justified columns: widths consistent.
        assert len(set(len(line) for line in lines)) == 1

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_row_length_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_bools_and_strings(self):
        out = format_table(["ok", "name"], [[True, "row"]])
        assert "True" in out
        assert "row" in out


class TestFormatSeries:
    def test_header_and_labels(self):
        out = format_series("m", [1, 2], [3.0, 4.0], x_label="n", y_label="W")
        assert out.startswith("series: m")
        assert "n" in out and "W" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("m", [1], [1, 2])


class TestExperiment:
    def make(self):
        return Experiment("X1", "title", "claim")

    def test_add_series(self):
        exp = self.make()
        exp.add_series("s", [1, 2], [3, 4])
        assert len(exp.series) == 1
        assert "series: s" in exp.render()

    def test_rows_need_headers(self):
        exp = self.make()
        with pytest.raises(ValueError, match="headers"):
            exp.add_row(1, 2)

    def test_add_row_checks_width(self):
        exp = self.make()
        exp.headers = ["a", "b"]
        with pytest.raises(ValueError):
            exp.add_row(1)

    def test_render_contains_everything(self):
        exp = self.make()
        exp.headers = ["n", "w"]
        exp.add_row(4, 2.0)
        exp.add_note("a note")
        out = exp.render()
        assert "== X1: title ==" in out
        assert "paper claim: claim" in out
        assert "a note" in out

    def test_report_prints(self, capsys):
        exp = self.make()
        exp.report()
        captured = capsys.readouterr()
        assert "X1" in captured.out


class TestRegistry:
    def test_add_and_get(self):
        reg = ExperimentRegistry()
        exp = reg.add(Experiment("A", "t", "c"))
        assert reg.get("A") is exp
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = ExperimentRegistry()
        reg.add(Experiment("A", "t", "c"))
        with pytest.raises(ValueError, match="duplicate"):
            reg.add(Experiment("A", "t2", "c2"))

    def test_render_all_sorted(self):
        reg = ExperimentRegistry()
        reg.add(Experiment("B", "t", "c"))
        reg.add(Experiment("A", "t", "c"))
        out = reg.render_all()
        assert out.index("== A") < out.index("== B")
