"""Tests for the on-disk exact-chain memo (repro.core.memo)."""

import json

import pytest

import repro.core.memo as memo_module
from repro.chains.scu import (
    clear_exact_chain_caches,
    scu_success_probability,
    scu_system_latency_exact,
)
from repro.core.memo import (
    MEMO_DIR_ENV,
    MEMO_SCHEMA_VERSION,
    DiskMemo,
    active_memo,
    clear_disk_entries,
    configure_memo,
    disk_memoized,
    memo_counters,
    reset_memo_counters,
)


@pytest.fixture(autouse=True)
def isolated_memo():
    """No test inherits (or leaks) a process-wide memo configuration."""
    previous = memo_module._active
    configure_memo(None)
    reset_memo_counters()
    yield
    memo_module._active = previous
    clear_exact_chain_caches()
    reset_memo_counters()


def computes() -> int:
    return memo_counters().get("computes", 0)


class TestDiskMemo:
    def test_put_get_round_trips_floats_exactly(self, tmp_path):
        memo = DiskMemo(tmp_path)
        value = 1.0 / 3.0 + 1e-16
        memo.put("solver", (4, 2), value)
        assert memo.get("solver", (4, 2)) == value

    def test_missing_entry_is_a_miss(self, tmp_path):
        memo = DiskMemo(tmp_path)
        assert memo.get("solver", (4, 2)) is memo_module._MISS
        assert memo_counters().get("disk_misses") == 1

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"schema": 999, "key": ["solver", [4, 2]], "value": 1.0}',
            '{"schema": 1, "key": ["other", [4, 2]], "value": 1.0}',
            '{"schema": 1, "key": ["solver", [4, 2]], "value": true}',
            '{"schema": 1, "key": ["solver", [4, 2]], "value": "x"}',
            '{"schema": 1, "key": ["solver", [4, 2]]}',
            '{"schema": 1, "key": ["solver",',  # torn write of a legacy file
            "[]",
        ],
    )
    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, payload):
        memo = DiskMemo(tmp_path)
        path = memo.entry_path("solver", (4, 2))
        path.parent.mkdir(parents=True)
        path.write_text(payload)
        assert memo.get("solver", (4, 2)) is memo_module._MISS
        assert memo_counters().get("disk_corrupt") == 1
        # put() overwrites the corrupt entry with a good one.
        memo.put("solver", (4, 2), 2.5)
        assert memo.get("solver", (4, 2)) == 2.5

    def test_entry_payload_layout(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("solver", (4, 2), 2.5)
        payload = json.loads(memo.entry_path("solver", (4, 2)).read_text())
        assert payload == {
            "schema": MEMO_SCHEMA_VERSION,
            "key": ["solver", [4, 2]],
            "value": 2.5,
        }

    def test_put_swallows_unwritable_root(self, tmp_path):
        # A root that is a plain file makes every mkdir/write fail with
        # OSError (works even when the test runs as root, unlike chmod).
        blocked = tmp_path / "blocked"
        blocked.write_text("in the way")
        memo = DiskMemo(blocked)
        memo.put("solver", (4, 2), 2.5)  # must not raise
        assert memo.get("solver", (4, 2)) is memo_module._MISS

    def test_clear_by_name_and_all(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("a", (1,), 1.0)
        memo.put("a", (2,), 2.0)
        memo.put("b", (1,), 3.0)
        assert memo.clear("a") == 2
        assert memo.get("a", (1,)) is memo_module._MISS
        assert memo.get("b", (1,)) == 3.0
        assert memo.clear() == 1


class TestConfiguration:
    def test_unconfigured_active_memo_is_none(self):
        assert active_memo() is None

    def test_configure_and_disable(self, tmp_path):
        memo = configure_memo(tmp_path)
        assert active_memo() is memo
        assert memo.root == tmp_path
        assert configure_memo(None) is None
        assert active_memo() is None

    def test_env_var_is_the_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MEMO_DIR_ENV, str(tmp_path / "env-memo"))
        monkeypatch.setattr(memo_module, "_active", memo_module._UNRESOLVED)
        memo = active_memo()
        assert memo is not None
        assert memo.root == tmp_path / "env-memo"

    def test_explicit_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MEMO_DIR_ENV, str(tmp_path / "env-memo"))
        configure_memo(tmp_path / "explicit")
        assert active_memo().root == tmp_path / "explicit"

    def test_clear_disk_entries_without_memo_is_noop(self):
        assert clear_disk_entries(["anything"]) == 0


class TestDiskMemoized:
    def test_warm_start_skips_recompute_and_is_bit_equal(self, tmp_path):
        configure_memo(tmp_path)
        calls = []

        @disk_memoized("expensive")
        def expensive(n):
            calls.append(n)
            return n / 7.0

        cold = expensive(3)
        assert calls == [3]
        # A new process has an empty lru_cache but the same disk.
        expensive.cache_clear()
        warm = expensive(3)
        assert calls == [3]  # no recompute
        assert warm == cold
        assert memo_counters().get("disk_hits") == 1

    def test_without_memo_behaves_like_plain_lru_cache(self):
        calls = []

        @disk_memoized("plain")
        def plain(n):
            calls.append(n)
            return float(n)

        assert plain(1) == plain(1) == 1.0
        assert calls == [1]
        counters = memo_counters()
        assert counters.get("disk_hits", 0) == 0
        assert counters.get("disk_writes", 0) == 0

    def test_memo_name_attribute_exposed(self):
        @disk_memoized("named")
        def named(n):
            return float(n)

        assert named.memo_name == "named"


class TestScuIntegration:
    ARGS = (3,)

    def test_cold_then_warm_solve_is_bit_identical(self, tmp_path):
        configure_memo(tmp_path)
        clear_exact_chain_caches()
        reset_memo_counters()
        cold_p = scu_success_probability(*self.ARGS)
        cold_latency = scu_system_latency_exact(*self.ARGS)
        cold_computes = computes()
        assert cold_computes >= 2

        # Simulate a fresh process: empty in-process caches, same disk.
        for solver in (scu_success_probability, scu_system_latency_exact):
            solver.cache_clear()
        reset_memo_counters()
        assert scu_success_probability(*self.ARGS) == cold_p
        assert scu_system_latency_exact(*self.ARGS) == cold_latency
        assert computes() == 0  # the warm start skipped every solve
        assert memo_counters().get("disk_hits") == 2

    def test_clear_exact_chain_caches_clears_disk_layer_too(self, tmp_path):
        configure_memo(tmp_path)
        clear_exact_chain_caches()
        reset_memo_counters()
        scu_success_probability(*self.ARGS)
        assert computes() == 1
        clear_exact_chain_caches()
        reset_memo_counters()
        scu_success_probability(*self.ARGS)
        # Both layers were cleared, so the solver really ran again.
        assert computes() == 1
        assert memo_counters().get("disk_hits", 0) == 0


class TestListValues:
    """Flat lists of numbers (the service's point triples) round-trip."""

    def test_list_value_roundtrip(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("triples", (2, 0), [1.5, 2.5, 3.5])
        assert memo.get("triples", (2, 0)) == [1.5, 2.5, 3.5]

    def test_tuple_value_stored_as_list(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("triples", (2, 1), (1.0, 2.0, 3.0))
        assert memo.get("triples", (2, 1)) == [1.0, 2.0, 3.0]

    def test_non_numeric_list_is_corruption(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("triples", (4, 0), [1.0, 2.0, 3.0])
        path = memo.entry_path("triples", (4, 0))
        payload = json.loads(path.read_text())
        payload["value"] = [1.0, "oops", 3.0]
        path.write_text(json.dumps(payload))
        reset_memo_counters()
        assert memo.get("triples", (4, 0)) is memo_module._MISS
        assert memo_counters()["disk_corrupt"] == 1

    def test_empty_list_is_corruption(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("triples", (4, 1), [1.0])
        path = memo.entry_path("triples", (4, 1))
        payload = json.loads(path.read_text())
        payload["value"] = []
        path.write_text(json.dumps(payload))
        assert memo.get("triples", (4, 1)) is memo_module._MISS


class TestDegradedPut:
    """A full or read-only disk degrades the memo, never the solve."""

    @pytest.fixture(autouse=True)
    def reset_warn_flag(self):
        memo_module._warned_put_failure = False
        yield
        memo_module._warned_put_failure = False

    def test_put_failure_warns_once_and_counts(self, tmp_path, monkeypatch):
        import errno
        import warnings as warnings_module

        def refuse(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device")

        memo = DiskMemo(tmp_path)
        monkeypatch.setattr(memo_module.tempfile, "mkstemp", refuse)
        reset_memo_counters()
        with pytest.warns(RuntimeWarning, match="memo write failed"):
            memo.put("solve", (1,), 2.0)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            memo.put("solve", (2,), 3.0)  # silent after the first warning
        counters = memo_counters()
        assert counters["put_failures"] == 2
        assert "disk_writes" not in counters
        # nothing was stored; reads are misses, not errors
        assert memo.get("solve", (1,)) is memo_module._MISS

    def test_memoized_function_survives_put_failure(
        self, tmp_path, monkeypatch
    ):
        import errno

        def refuse(*args, **kwargs):
            raise OSError(errno.EPERM, "read-only")

        configure_memo(tmp_path)
        monkeypatch.setattr(memo_module.tempfile, "mkstemp", refuse)

        @disk_memoized("flaky-disk")
        def double(x):
            return 2.0 * x

        with pytest.warns(RuntimeWarning, match="memo write failed"):
            assert double(3) == 6.0
