"""Tests for the fault-tolerant executor (repro.core.runner)."""

import functools
import time
from pathlib import Path

import pytest

from repro.core.runner import (
    ResilientExecutor,
    RetryPolicy,
    TaskError,
    _stable_seed,
)
from repro.testing.chaos import ChaosError, ChaosPlan, ChaosPool, FlakyPoolFactory

FAST = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.05)


def square_worker(keys):
    """Pure worker: one squared value per key."""
    return [key * key for key in keys]


def flaky_worker(keys, state_dir):
    """Fails the first time each key is seen (marker files), then works."""
    for key in keys:
        marker = Path(state_dir) / f"seen-{key}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            continue
        raise RuntimeError(f"transient failure for {key}")
    return [key * key for key in keys]


def poison_worker(keys, bad_key):
    """Always fails for one key, works for the rest."""
    if bad_key in keys:
        raise RuntimeError(f"poison {bad_key}")
    return [key * key for key in keys]


def slow_worker(keys, duration):
    """Sleeps ``duration`` seconds, then squares — well under any sane
    deadline, so timeouts in a test mean the clock started too early."""
    time.sleep(duration)
    return [key * key for key in keys]


class TestBackoff:
    def test_deterministic_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        first = policy.backoff_delay(("unit", 3), 2)
        again = policy.backoff_delay(("unit", 3), 2)
        assert first == again
        assert first != policy.backoff_delay(("unit", 4), 2)

    def test_capped_exponential_envelope(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        for attempt in range(1, 12):
            delay = policy.backoff_delay("k", attempt)
            cap = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert cap / 2 <= delay <= cap

    def test_stable_seed_is_process_stable(self):
        # CRC32 of the repr, not the salted hash() builtin.
        assert _stable_seed(("a", 1), 2) == _stable_seed(("a", 1), 2)


class TestHappyPath:
    def test_all_results_collected(self):
        executor = ResilientExecutor(square_worker, max_workers=2, policy=FAST)
        results = executor.run(list(range(10)), chunk_size=3)
        assert results == {k: k * k for k in range(10)}
        assert executor.stats.retries == 0

    def test_empty_task_list(self):
        executor = ResilientExecutor(square_worker, max_workers=2)
        assert executor.run([]) == {}

    def test_on_result_fires_per_task(self):
        seen = {}
        executor = ResilientExecutor(square_worker, max_workers=2, policy=FAST)
        executor.run(list(range(6)), chunk_size=2, on_result=seen.__setitem__)
        assert seen == {k: k * k for k in range(6)}

    def test_default_chunk_size_from_public_config(self):
        executor = ResilientExecutor(square_worker, max_workers=4)
        # Roughly four chunks per worker; never zero.
        assert executor.default_chunk_size(100) == 7
        assert executor.default_chunk_size(1) == 1


class TestRecovery:
    def test_transient_raise_is_retried(self, tmp_path):
        executor = ResilientExecutor(flaky_worker, max_workers=2, policy=FAST)
        results = executor.run(
            list(range(6)), args=(str(tmp_path),), chunk_size=2
        )
        assert results == {k: k * k for k in range(6)}
        assert executor.stats.retries > 0

    def test_poison_task_named_in_error(self):
        executor = ResilientExecutor(
            poison_worker,
            max_workers=2,
            policy=RetryPolicy(max_retries=1, base_delay=0.01, max_delay=0.02),
        )
        with pytest.raises(TaskError, match="3") as excinfo:
            executor.run(list(range(6)), args=(3,), chunk_size=3)
        assert excinfo.value.key == 3
        # The chunk was split before the single task was condemned.
        assert executor.stats.splits >= 1

    def test_worker_kill_recovers_via_pool_rebuild(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), faults={2: "kill"})
        executor = ResilientExecutor(
            square_worker,
            max_workers=2,
            policy=FAST,
            pool_factory=functools.partial(ChaosPool, plan=plan),
        )
        results = executor.run(list(range(6)), chunk_size=1)
        assert results == {k: k * k for k in range(6)}
        assert executor.stats.pool_rebuilds >= 1

    def test_hang_recovers_via_deadline(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path), faults={1: "hang"}, hang_seconds=5.0
        )
        executor = ResilientExecutor(
            square_worker,
            max_workers=2,
            policy=RetryPolicy(
                max_retries=3, base_delay=0.01, max_delay=0.05, timeout=1.0
            ),
            pool_factory=functools.partial(ChaosPool, plan=plan),
        )
        start = time.monotonic()
        results = executor.run(list(range(4)), chunk_size=1)
        assert results == {k: k * k for k in range(4)}
        assert executor.stats.timeouts >= 1
        # Recovery means not waiting out the full 5s hang.
        assert time.monotonic() - start < 4.5

    def test_queued_chunks_do_not_accrue_deadline(self):
        # 8 chunks on 2 workers run in ~4 waves of 0.4s each.  If the
        # deadline clock started when all chunks were submitted at once,
        # the later waves would blow the 1.2s timeout while merely
        # queued; with capacity-capped submission none of them should.
        executor = ResilientExecutor(
            slow_worker,
            max_workers=2,
            policy=RetryPolicy(
                max_retries=1, base_delay=0.01, max_delay=0.02, timeout=1.2
            ),
        )
        results = executor.run(list(range(8)), args=(0.4,), chunk_size=1)
        assert results == {k: k * k for k in range(8)}
        assert executor.stats.timeouts == 0
        assert executor.stats.retries == 0

    def test_persistent_hang_raises_task_error_not_serial_hang(self, tmp_path):
        # A task that hangs on every attempt must end in TaskError once
        # its retries run out — never in serial fallback, which has no
        # deadline and would block on the hang forever.
        plan = ChaosPlan(
            state_dir=str(tmp_path),
            faults={1: "hang"},
            hang_seconds=30.0,
            once=False,
        )
        executor = ResilientExecutor(
            square_worker,
            max_workers=2,
            policy=RetryPolicy(
                max_retries=1,
                base_delay=0.01,
                max_delay=0.02,
                timeout=0.75,
                fallback_after=1,
            ),
            pool_factory=functools.partial(ChaosPool, plan=plan),
        )
        start = time.monotonic()
        with pytest.raises(TaskError) as excinfo:
            executor.run([0, 1, 2], chunk_size=1)
        assert excinfo.value.key == 1
        assert not executor.stats.fell_back_serial
        assert executor.stats.timeouts >= 2
        # Failing fast is the point: nowhere near the 30s hang.
        assert time.monotonic() - start < 20.0

    def test_serial_fallback_when_pool_never_comes_up(self):
        factory = FlakyPoolFactory(fail_creations=10**9)
        executor = ResilientExecutor(
            square_worker,
            max_workers=2,
            policy=RetryPolicy(base_delay=0.01, fallback_after=2),
            pool_factory=factory,
        )
        results = executor.run(list(range(6)), chunk_size=2)
        assert results == {k: k * k for k in range(6)}
        assert executor.stats.fell_back_serial
        assert factory.created == 2

    def test_serial_fallback_still_isolates_poison(self):
        executor = ResilientExecutor(
            poison_worker,
            max_workers=2,
            policy=RetryPolicy(
                max_retries=1, base_delay=0.01, fallback_after=1
            ),
            pool_factory=FlakyPoolFactory(fail_creations=10**9),
        )
        with pytest.raises(TaskError) as excinfo:
            executor.run(list(range(4)), args=(2,), chunk_size=2)
        assert excinfo.value.key == 2


class TestChaosPlan:
    def test_fire_once_markers(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), faults={(1,): "raise"})
        assert plan.fault_for((1,)) == "raise"
        assert plan.arm((1,)) is True
        assert plan.arm((1,)) is False
        plan.reset()
        assert plan.arm((1,)) is True

    def test_persistent_faults(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path), faults={(1,): "raise"}, once=False
        )
        assert plan.arm((1,)) is True
        assert plan.arm((1,)) is True

    def test_seeded_probability_is_deterministic(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), probability=0.5, seed=3)
        picks = [plan.fault_for((k,)) for k in range(64)]
        again = [plan.fault_for((k,)) for k in range(64)]
        assert picks == again
        assert any(pick is not None for pick in picks)
        assert any(pick is None for pick in picks)

    def test_unknown_fault_kind_rejected(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), faults={(1,): "frobnicate"})
        with pytest.raises(ValueError, match="unknown fault kind"):
            plan.fault_for((1,))

    def test_chaos_error_raised_inline(self, tmp_path):
        from repro.testing.chaos import chaos_worker

        plan = ChaosPlan(state_dir=str(tmp_path), faults={(1,): "raise"})
        with pytest.raises(ChaosError, match="injected"):
            chaos_worker(plan, [(0,), (1,)])
        # Fire-once: the second call runs clean.
        chaos_worker(plan, [(0,), (1,)])
