"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLatency:
    def test_basic_run(self, capsys):
        code = main(["latency", "--q", "0", "--s", "1", "-n", "4",
                     "--steps", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCU(0,1)" in out
        assert "measured W" in out

    def test_hardware_scheduler(self, capsys):
        code = main(["latency", "-n", "4", "--steps", "20000",
                     "--scheduler", "hardware"])
        assert code == 0

    def test_telemetry_report_written(self, capsys, tmp_path):
        import json

        path = tmp_path / "telemetry.json"
        code = main(["latency", "-n", "4", "--steps", "20000",
                     "--telemetry", str(path)])
        assert code == 0
        report = json.loads(path.read_text())
        assert report["command"] == "latency"
        assert report["metrics"]["counters"]["sim.steps"] == 20000
        assert report["uniformity"]["per_n"]["4"]["steps"] == 20000


class TestClassify:
    def test_cas_counter(self, capsys):
        code = main(["classify", "cas-counter", "--steps", "15000"])
        assert code == 0
        assert "lock-free" in capsys.readouterr().out

    def test_tas_lock(self, capsys):
        code = main(["classify", "tas-lock", "--steps", "15000"])
        assert code == 0
        assert "blocking" in capsys.readouterr().out

    def test_unknown_algorithm(self, capsys):
        code = main(["classify", "nope"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestRamanujan:
    def test_ladder(self, capsys):
        code = main(["ramanujan", "--max-n", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Z(n-1)" in out
        assert "\n64" in out


class TestLifting:
    def test_verification(self, capsys):
        code = main(["lifting", "-n", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 3


class TestGaps:
    def test_distribution_printed(self, capsys):
        code = main(["gaps", "-n", "8", "--head", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P(gap=k)" in out
        assert "p99" in out

    def test_gap_one_impossible_for_scan_validate(self, capsys):
        # After a success nobody holds a valid pending CAS, so the
        # minimum gap is 2.
        main(["gaps", "-n", "8", "--head", "1"])
        out = capsys.readouterr().out
        first_row = [line for line in out.splitlines() if line.strip().startswith("1")][0]
        assert "0.0000" in first_row


class TestFigure5:
    def test_series(self, capsys):
        code = main(["figure5", "--points", "3", "--steps", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst 1/n" in out

    def test_zero_points_rejected_with_thread_counts_named(self, capsys):
        # --points 0 used to crash with IndexError at measured[0].
        code = main(["figure5", "--points", "0", "--steps", "4000"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--points" in err
        assert "[2, 4, 8, 16, 32]" in err

    def test_too_many_points_rejected_with_thread_counts_named(self, capsys):
        # --points 9 used to be silently capped at the 5-element series.
        code = main(["figure5", "--points", "9", "--steps", "4000"])
        assert code == 2
        err = capsys.readouterr().err
        assert "between 1 and 5" in err
        assert "[2, 4, 8, 16, 32]" in err
        assert "9" in err

    def test_negative_points_rejected(self, capsys):
        assert main(["figure5", "--points", "-1", "--steps", "4000"]) == 2

    def test_telemetry_report_written(self, capsys, tmp_path):
        import json

        path = tmp_path / "telemetry.json"
        code = main(["figure5", "--points", "2", "--steps", "4000",
                     "--telemetry", str(path)])
        assert code == 0
        report = json.loads(path.read_text())
        assert report["schema"] == 2
        assert report["command"] == "figure5"
        counters = report["metrics"]["counters"]
        assert counters["sim.runs"] == 2
        assert counters["sim.steps"] == 8000
        uniformity = report["uniformity"]
        assert set(uniformity["per_n"]) == {"2", "4"}
        # The uniform scheduler drove both runs: TV distance near zero.
        assert uniformity["max_tv_distance"] < 0.1

    def test_telemetry_does_not_change_output(self, capsys, tmp_path):
        args = ["figure5", "--points", "2", "--steps", "4000"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--telemetry", str(tmp_path / "t.json")]) == 0
        assert capsys.readouterr().out == plain

    def test_checkpoint_resume_skips_measured_points(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.core.latency as latency_module

        path = tmp_path / "fig5.jsonl"
        args = ["figure5", "--points", "2", "--steps", "4000",
                "--checkpoint", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out

        calls = []
        real = latency_module.measure_latencies

        def counting(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        monkeypatch.setattr(latency_module, "measure_latencies", counting)
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first
        assert calls == []  # every thread count came from the checkpoint

    def test_checkpoint_mismatch_rejected(self, tmp_path):
        from repro.core.checkpoint import CheckpointMismatchError

        path = tmp_path / "fig5.jsonl"
        assert main(["figure5", "--points", "2", "--steps", "4000",
                     "--checkpoint", str(path)]) == 0
        with pytest.raises(CheckpointMismatchError):
            main(["figure5", "--points", "2", "--steps", "5000",
                  "--checkpoint", str(path), "--resume"])

    def test_workload_flag_runs_zoo_member(self, capsys):
        code = main(["figure5", "--workload", "msqueue", "--points", "2",
                     "--steps", "3000", "--engine", "batched"])
        assert code == 0
        out = capsys.readouterr().out
        # Non-SCU(0,1) members have no exact chain column.
        assert "nan" in out

    def test_workload_folds_into_checkpoint_fingerprint(self, tmp_path):
        from repro.core.checkpoint import CheckpointMismatchError

        path = tmp_path / "fig5.jsonl"
        assert main(["figure5", "--workload", "treiber", "--points", "2",
                     "--steps", "3000", "--checkpoint", str(path)]) == 0
        with pytest.raises(CheckpointMismatchError, match="workload"):
            main(["figure5", "--workload", "msqueue", "--points", "2",
                  "--steps", "3000", "--checkpoint", str(path), "--resume"])

    def test_unknown_workload_rejected(self, capsys):
        code = main(["figure5", "--workload", "nope", "--points", "1",
                     "--steps", "1000"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_ensemble_engine_restricted_to_cas_counter(self, capsys):
        code = main(["figure5", "--workload", "treiber", "--points", "1",
                     "--steps", "1000", "--engine", "ensemble"])
        assert code == 2
        assert "ensemble" in capsys.readouterr().err


class TestLatencyWorkload:
    def test_zoo_member_measured(self, capsys):
        code = main(["latency", "--workload", "msqueue", "-n", "4",
                     "--steps", "8000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "msqueue" in out
        assert "measured W" in out

    def test_contention_scheduler_accepted(self, capsys):
        code = main(["latency", "--workload", "rtas-lock", "-n", "4",
                     "--steps", "8000", "--scheduler", "contention:4",
                     "--engine", "batched"])
        assert code == 0
        assert "rtas-lock" in capsys.readouterr().out

    def test_scu_member_keeps_exact_columns(self, capsys):
        code = main(["latency", "--workload", "cas-counter", "-n", "4",
                     "--steps", "8000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cas-counter" in out
        assert "nan" not in out

    def test_unknown_workload_rejected(self, capsys):
        code = main(["latency", "--workload", "nope", "--steps", "100"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_epsilon_scheduler_parses(self, capsys):
        code = main(["latency", "-n", "4", "--steps", "8000",
                     "--scheduler", "epsilon:0.3"])
        assert code == 0

    def test_bad_scheduler_named(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            main(["latency", "-n", "2", "--steps", "100",
                  "--scheduler", "frobnicate"])


class TestZoo:
    def test_table_and_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "zoo.json"
        code = main(["zoo", "--workload", "cas-counter",
                     "--workload", "rtas-lock", "-n", "4",
                     "--steps", "2000", "--epsilons", "0,0.5",
                     "--focuses", "4", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cas-counter" in out
        assert "rtas-lock" in out
        assert "TV" in out
        table = json.loads(out_path.read_text())
        assert set(table["workloads"]) == {"cas-counter", "rtas-lock"}
        labels = {p["scheduler"] for p in table["workloads"]["rtas-lock"]}
        assert labels == {"uniform", "epsilon(0)", "epsilon(0.5)",
                          "contention(4)"}

    def test_unknown_workload_rejected(self, capsys):
        code = main(["zoo", "--workload", "nope", "--steps", "100"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestKeyboardInterrupt:
    def test_exits_130_and_flushes_checkpoints(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.cli as cli_module
        from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint

        checkpoint = SweepCheckpoint.open(
            tmp_path / "cp.jsonl",
            sweep_fingerprint(
                seed=0, steps=100, engine="batched", n_values=[2],
                repeats=2, burn_in=None,
            ),
        )
        checkpoint.record(2, 0, (1.0, 1.0, 1.0))

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "cmd_ramanujan", interrupted)
        code = main(["ramanujan", "--max-n", "4"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume" in err
        # The in-flight record survived the interrupt.
        checkpoint.close()
        assert SweepCheckpoint.load_completed(tmp_path / "cp.jsonl") == {
            (2, 0): (1.0, 1.0, 1.0)
        }

    def test_resume_hint_survives_checkpoint_already_closed(
        self, capsys, tmp_path, monkeypatch
    ):
        # The common Ctrl-C shape: the sweep's finally block has already
        # closed (and deregistered) the checkpoint before the interrupt
        # reaches main, so nothing is left to flush — but the file on
        # disk is resumable and the hint must still be printed.
        import repro.cli as cli_module

        path = tmp_path / "fig5.jsonl"

        def interrupted(args):
            path.write_text('{"kind": "header"}\n')
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "cmd_figure5", interrupted)
        code = main(["figure5", "--checkpoint", str(path)])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err

    def test_no_resume_hint_without_any_checkpoint(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "cmd_ramanujan", interrupted)
        code = main(["ramanujan", "--max-n", "4"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume" not in err


class TestSigtermParity:
    """SIGTERM gets the same flush-and-exit treatment as Ctrl-C (exit 143)."""

    def test_exits_143_and_flushes_checkpoints(
        self, capsys, tmp_path, monkeypatch
    ):
        import os
        import signal

        import repro.cli as cli_module
        from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint

        checkpoint = SweepCheckpoint.open(
            tmp_path / "cp.jsonl",
            sweep_fingerprint(
                seed=0, steps=100, engine="batched", n_values=[2],
                repeats=2, burn_in=None,
            ),
        )
        checkpoint.record(2, 0, (1.0, 1.0, 1.0))

        def terminated(args):
            # Deliver a real SIGTERM to ourselves; main's handler turns
            # it into the orderly shutdown path.
            os.kill(os.getpid(), signal.SIGTERM)
            signal.sigtimedwait([], 5)  # give the signal time to land
            raise AssertionError("SIGTERM handler never fired")

        monkeypatch.setattr(cli_module, "cmd_ramanujan", terminated)
        code = main(["ramanujan", "--max-n", "4"])
        assert code == 143
        err = capsys.readouterr().err
        assert "terminated" in err
        assert "resume" in err
        checkpoint.close()
        assert SweepCheckpoint.load_completed(tmp_path / "cp.jsonl") == {
            (2, 0): (1.0, 1.0, 1.0)
        }

    def test_previous_sigterm_handler_restored(self, monkeypatch):
        import signal

        import repro.cli as cli_module

        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGTERM, sentinel)
        try:
            monkeypatch.setattr(
                cli_module, "cmd_ramanujan", lambda args: 0
            )
            assert main(["ramanujan", "--max-n", "4"]) == 0
            assert signal.getsignal(signal.SIGTERM) is sentinel
        finally:
            signal.signal(signal.SIGTERM, previous)
