"""Zero-copy shared-memory dispatch: identity, recovery, and no leaks.

``parallel_sweep(dispatch="sharedmem")`` moves tasks and results through
``multiprocessing.shared_memory`` instead of pickle.  Transport must be
invisible: points bit-identical to pickle dispatch and the serial sweep,
the recovery ladder (retry, poison isolation, pool rebuild, serial
fallback) untouched, and — the chaos contract — **zero** orphaned
``/dev/shm`` segments no matter how workers die.  Under this dispatch
the executor's task keys are row indices, so chaos plans here key faults
by row (row ``i`` is ``tasks[i]`` in ``(n, replicate)`` n-major order)
and :class:`TaskError` must be remapped back to the real pair.
"""

import functools
import glob
import os

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core import shm
from repro.core.runner import RetryPolicy, TaskError
from repro.core.shm import SweepTaskBuffers, attach_array, release, segment_digest
from repro.core.sweep import latency_sweep, parallel_sweep
from repro.core.telemetry import MetricsRegistry
from repro.testing.chaos import ChaosPlan, ChaosPool, FlakyPoolFactory

SWEEP = dict(steps=8_000, repeats=3, seed=5)
N_VALUES = [2, 4]
#: Row-index view of the task list: rows 0..2 are n=2, rows 3..5 are n=4.
ROW_OF = {
    (n, r): i
    for i, (n, r) in enumerate(
        (n, r) for n in N_VALUES for r in range(SWEEP["repeats"])
    )
}
FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.1)

pytestmark = pytest.mark.skipif(
    not shm.sharedmem_available(), reason="no multiprocessing.shared_memory"
)


def leaked_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return []
    return glob.glob("/dev/shm/repro-*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file ends with a clean /dev/shm."""
    assert leaked_segments() == []
    yield
    assert leaked_segments() == []


@pytest.fixture(scope="module")
def reference():
    return latency_sweep(
        cas_counter, make_counter_memory, N_VALUES, batched=True, **SWEEP
    )


class TestTransportIsInvisible:
    def test_sharedmem_matches_pickle_and_serial(self, reference):
        shared = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            dispatch="sharedmem",
            **SWEEP,
        )
        pickled = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            dispatch="pickle",
            **SWEEP,
        )
        assert shared == pickled == reference

    def test_auto_prefers_sharedmem_and_counts_segments(self, reference):
        telemetry = MetricsRegistry()
        points = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            telemetry=telemetry,
            **SWEEP,
        )
        assert points == reference
        assert telemetry.counters["shm.segments"] == 2
        assert telemetry.counters["shm.unlinked"] == 2
        assert telemetry.counters["shm.bytes"] == 6 * 2 * 8 + 6 * 3 * 8
        assert "shm.fallbacks" not in telemetry.counters

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                dispatch="carrier-pigeon",
                **SWEEP,
            )


class TestChaos:
    def test_kill_hang_raise_leave_results_exact_and_no_orphans(
        self, tmp_path, reference
    ):
        plan = ChaosPlan(
            state_dir=str(tmp_path),
            faults={
                ROW_OF[(2, 1)]: "kill",
                ROW_OF[(4, 0)]: "raise",
                ROW_OF[(4, 2)]: "hang",
            },
            hang_seconds=5.0,
        )
        points = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            chunk_size=1,
            dispatch="sharedmem",
            retry=RetryPolicy(
                max_retries=3, base_delay=0.01, max_delay=0.1, timeout=1.5
            ),
            pool_factory=functools.partial(ChaosPool, plan=plan),
            **SWEEP,
        )
        assert points == reference
        # The autouse fixture re-checks, but the point of this test is
        # the chaos contract — assert it explicitly at the scene.
        assert leaked_segments() == []

    def test_poison_task_error_names_the_replicate(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path),
            faults={ROW_OF[(4, 1)]: "raise"},
            once=False,
        )
        with pytest.raises(TaskError, match=r"\(4, 1\)") as excinfo:
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                max_workers=2,
                chunk_size=1,
                dispatch="sharedmem",
                retry=RetryPolicy(max_retries=1, base_delay=0.01, max_delay=0.02),
                pool_factory=functools.partial(ChaosPool, plan=plan),
                **SWEEP,
            )
        # Remapped from the executor's row index to the real task key.
        assert excinfo.value.key == (4, 1)

    def test_serial_fallback_still_uses_the_buffers(self, reference):
        telemetry = MetricsRegistry()
        points = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            dispatch="sharedmem",
            retry=RetryPolicy(
                max_retries=1, base_delay=0.01, max_delay=0.02, fallback_after=1
            ),
            pool_factory=FlakyPoolFactory(fail_creations=10**9),
            telemetry=telemetry,
            **SWEEP,
        )
        assert points == reference
        assert telemetry.counters["executor.serial_fallbacks"] == 1
        assert telemetry.counters["shm.unlinked"] == 2


class TestBuffers:
    TASKS = [(2, 0), (2, 1), (4, 0)]

    def test_roundtrip_and_cleanup(self):
        telemetry = MetricsRegistry()
        buffers = SweepTaskBuffers(
            self.TASKS, segment_digest({"seed": 1}), telemetry=telemetry
        )
        try:
            assert buffers.task_count == 3
            assert [buffers.key_of(i) for i in range(3)] == self.TASKS
            assert all(np.isnan(buffers.triple(0)))
            buffers.results[1] = (1.5, 2.5, 3.5)
            assert buffers.triple(1) == (1.5, 2.5, 3.5)
            # Both segments exist while open...
            assert len(leaked_segments()) == 2
        finally:
            buffers.close()
        # ...and close() is idempotent and total.
        buffers.close()
        assert telemetry.counters["shm.segments"] == 2
        assert telemetry.counters["shm.unlinked"] == 2

    def test_worker_side_attach_cache(self):
        buffers = SweepTaskBuffers(self.TASKS, segment_digest({"seed": 2}))
        try:
            seen = attach_array(buffers.task_name, (3, 2), np.int64)
            again = attach_array(buffers.task_name, (3, 2), np.int64)
            assert seen is again  # cached, not re-opened
            assert [tuple(row) for row in seen.tolist()] == self.TASKS
        finally:
            release(buffers.task_name)
            buffers.close()

    def test_stale_segment_is_steamrolled(self):
        """A same-named corpse from a killed previous run must not make
        the next run fail — it is unlinked and recreated."""
        from multiprocessing import shared_memory

        name = f"repro-stale-{os.getpid()}-t"
        corpse = shared_memory.SharedMemory(name=name, create=True, size=16)
        corpse.close()  # leave it linked: simulates a SIGKILLed parent
        fresh = shm._create_segment(name, 64)
        try:
            assert fresh.size >= 64
        finally:
            fresh.close()
            fresh.unlink()

    def test_empty_task_list_rejected(self):
        with pytest.raises(ValueError, match="at least one task"):
            SweepTaskBuffers([], segment_digest({}))

    def test_digest_is_stable_and_order_insensitive(self):
        left = segment_digest({"seed": 3, "steps": 100})
        right = segment_digest({"steps": 100, "seed": 3})
        assert left == right
        assert len(left) == 8
        assert left != segment_digest({"seed": 4, "steps": 100})
