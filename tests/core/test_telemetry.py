"""Tests for repro.core.telemetry and the instrumentation it feeds.

The contract under test is double-sided: with telemetry *off* (the
default ``telemetry=None`` / :data:`NULL_TELEMETRY`) nothing is
recorded and nothing changes; with telemetry *on* the counters match
the ground truth recorded by the engines themselves — and in neither
case may a single output bit differ, on any of the three engines.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.latency import measure_latencies, measure_latencies_ensemble
from repro.core.runner import ResilientExecutor, RetryPolicy
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.core.sweep import latency_sweep, parallel_sweep
from repro.core.telemetry import (
    EVENT_RUN,
    NULL_TELEMETRY,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    SchedulerUniformityObserver,
    write_run_report,
)
from repro.sim.executor import Simulator

FAST = RetryPolicy(max_retries=3, base_delay=0.001, max_delay=0.002)


def square_worker(keys):
    return [key * key for key in keys]


def flaky_worker(keys, state_dir):
    """Fails the first time each key is seen, then works."""
    for key in keys:
        marker = Path(state_dir) / f"seen-{key}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            continue
        raise RuntimeError(f"transient failure for {key}")
    return [key * key for key in keys]


def run_simulator(steps=20_000, n=4, seed=7, *, batched=False, telemetry=None,
                  crash_times=None):
    simulator = Simulator(
        cas_counter(),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=make_counter_memory(),
        rng=seed,
        crash_times=crash_times,
        telemetry=telemetry,
    )
    result = simulator.run_batched(steps) if batched else simulator.run(steps)
    return simulator, result


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.inc("b", 2.5)
        assert registry.counters == {"a": 5, "b": 2.5}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 3.0)
        assert registry.gauges == {"g": 3.0}

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty_histogram_reports_null_extremes(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None

    def test_span_times_block(self):
        registry = MetricsRegistry()
        with registry.span("t"):
            pass
        summary = registry.histograms["t"].summary()
        assert summary["count"] == 1
        assert summary["min"] >= 0

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("t"):
                raise RuntimeError("boom")
        assert registry.histograms["t"].count == 1

    def test_emit_reaches_subscribers(self):
        registry = MetricsRegistry()
        seen = []
        registry.subscribe("evt", seen.append)
        registry.emit("evt", {"x": 1})
        registry.emit("other", {"x": 2})
        assert seen == [{"x": 1}]

    def test_report_shape(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 2.0)
        registry.observe("h", 1.5)
        report = registry.report()
        assert report["counters"] == {"c": 1}
        assert report["gauges"] == {"g": 2.0}
        assert report["histograms"]["h"]["count"] == 1


class TestNullRegistry:
    def test_disabled_and_stateless(self):
        null = NullMetricsRegistry()
        assert null.enabled is False
        null.inc("a", 5)
        null.set_gauge("g", 1.0)
        null.observe("h", 2.0)
        null.emit("evt", {"x": 1})
        assert null.counters == {}
        assert null.gauges == {}
        assert null.histograms == {}
        assert null.report() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_span_reuses_shared_noop_instance(self):
        # The hot-path contract: a null span allocates nothing per call.
        null = NullMetricsRegistry()
        assert null.span("a") is null.span("b")

    def test_subscribers_never_fire(self):
        null = NullMetricsRegistry()
        seen = []
        null.subscribe(EVENT_RUN, seen.append)
        null.emit(EVENT_RUN, {"x": 1})
        assert seen == []

    def test_null_telemetry_records_nothing_on_a_run(self):
        run_simulator(steps=5_000, telemetry=NULL_TELEMETRY)
        assert NULL_TELEMETRY.report() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestEngineCounters:
    def test_serial_counters_match_trace_exactly(self):
        registry = MetricsRegistry()
        simulator, result = run_simulator(telemetry=registry)
        recorder = simulator.recorder
        attempts = sum(
            r.cas_attempts for r in simulator.memory._registers.values()
        )
        successes = sum(
            r.cas_successes for r in simulator.memory._registers.values()
        )
        assert registry.counters["sim.runs"] == 1
        assert registry.counters["sim.steps"] == recorder.total_steps
        assert (
            registry.counters["sim.completions"] == recorder.total_completions
        )
        assert registry.counters["sim.cas_wins"] == successes
        assert registry.counters["sim.cas_losses"] == attempts - successes
        assert registry.counters["sim.crashes"] == 0
        assert "sim.blocks" not in registry.counters
        assert result.steps_this_run == 20_000

    def test_batched_counters_match_serial(self):
        serial_registry = MetricsRegistry()
        run_simulator(telemetry=serial_registry)
        batched_registry = MetricsRegistry()
        run_simulator(telemetry=batched_registry, batched=True)
        blocks = batched_registry.counters.pop("sim.blocks")
        assert blocks >= 1
        assert batched_registry.counters == serial_registry.counters

    def test_crash_events_counted(self):
        registry = MetricsRegistry()
        run_simulator(
            steps=10_000, telemetry=registry, crash_times={0: 50, 1: 100}
        )
        assert registry.counters["sim.crashes"] == 2

    def test_crash_outside_horizon_not_counted(self):
        registry = MetricsRegistry()
        run_simulator(steps=1_000, telemetry=registry, crash_times={0: 10**9})
        assert registry.counters["sim.crashes"] == 0

    def test_repeated_runs_report_per_call_deltas(self):
        registry = MetricsRegistry()
        simulator = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_counter_memory(),
            rng=3,
            telemetry=registry,
        )
        simulator.run(5_000)
        simulator.run(5_000)
        assert registry.counters["sim.runs"] == 2
        assert registry.counters["sim.steps"] == 10_000
        assert (
            registry.counters["sim.completions"]
            == simulator.recorder.total_completions
        )

    def test_ensemble_counters_match_batched(self):
        batched_registry = MetricsRegistry()
        run_simulator(telemetry=batched_registry, batched=True)
        ensemble_registry = MetricsRegistry()
        measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            4,
            20_000,
            [7],
            memory_factory=make_counter_memory,
            telemetry=ensemble_registry,
        )
        counters = ensemble_registry.counters
        assert counters["ensemble.replicates"] == 1
        assert counters["ensemble.segments"] == 1
        assert counters["ensemble.steps"] == batched_registry.counters["sim.steps"]
        assert (
            counters["ensemble.completions"]
            == batched_registry.counters["sim.completions"]
        )
        assert (
            counters["ensemble.cas_wins"]
            == batched_registry.counters["sim.cas_wins"]
        )
        assert (
            counters["ensemble.cas_losses"]
            == batched_registry.counters["sim.cas_losses"]
        )

    def test_ensemble_crash_segments_counted(self):
        registry = MetricsRegistry()
        measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            4,
            10_000,
            [7],
            memory_factory=make_counter_memory,
            crash_times={0: 50, 1: 100},
            telemetry=registry,
        )
        assert registry.counters["ensemble.crashes"] == 2
        # Two crash boundaries split the horizon into three segments.
        assert registry.counters["ensemble.segments"] == 3


class TestBitIdentity:
    """Telemetry must never change a single output bit, on any engine."""

    @pytest.mark.parametrize("batched", [False, True])
    def test_simulator_identical_with_telemetry(self, batched):
        baseline = measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            steps=20_000,
            memory=make_counter_memory(),
            rng=7,
            batched=batched,
        )
        observed = measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            steps=20_000,
            memory=make_counter_memory(),
            rng=7,
            batched=batched,
            telemetry=MetricsRegistry(),
        )
        assert observed == baseline

    def test_ensemble_identical_with_telemetry(self):
        seeds = [(0, 4, r) for r in range(3)]
        baseline = measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            4,
            20_000,
            seeds,
            memory_factory=make_counter_memory,
        )
        observed = measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            4,
            20_000,
            seeds,
            memory_factory=make_counter_memory,
            telemetry=MetricsRegistry(),
        )
        assert observed == baseline

    @pytest.mark.parametrize("engine", ["serial", "batched", "ensemble"])
    def test_sweep_identical_with_telemetry(self, engine):
        kwargs = dict(steps=15_000, repeats=2, seed=11, engine=engine)
        baseline = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], **kwargs
        )
        observed = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            telemetry=MetricsRegistry(),
            **kwargs,
        )
        assert observed == baseline

    def test_parallel_sweep_identical_with_telemetry(self):
        kwargs = dict(steps=15_000, repeats=2, seed=5, max_workers=2)
        baseline = parallel_sweep(
            cas_counter, make_counter_memory, [2, 4], **kwargs
        )
        observed = parallel_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            telemetry=MetricsRegistry(),
            **kwargs,
        )
        assert observed == baseline


class TestSweepTelemetry:
    def test_point_counters_and_timing(self):
        registry = MetricsRegistry()
        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            steps=10_000,
            repeats=2,
            telemetry=registry,
        )
        assert registry.counters["sweep.points"] == 2
        assert registry.counters["sweep.replicates"] == 4
        assert registry.histograms["sweep.point_seconds"].count == 2
        assert registry.gauges["sweep.replicates_per_sec"] > 0
        # The engine counters rode along.
        assert registry.counters["sim.runs"] == 4

    def test_sweep_point_events_emitted(self):
        registry = MetricsRegistry()
        points = []
        registry.subscribe("sweep.point", points.append)
        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            steps=10_000,
            repeats=2,
            engine="ensemble",
            telemetry=registry,
        )
        assert [p["n"] for p in points] == [2, 4]
        assert all(p["replicates"] == 2 for p in points)

    def test_checkpoint_counters_and_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        kwargs = dict(steps=10_000, repeats=2, seed=3)
        write_registry = MetricsRegistry()
        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            checkpoint=path,
            telemetry=write_registry,
            **kwargs,
        )
        assert write_registry.counters["checkpoint.records"] == 4
        # close() fsyncs, so at least one batch landed.
        assert write_registry.counters["checkpoint.fsync_batches"] >= 1

        resume_registry = MetricsRegistry()
        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            checkpoint=path,
            resume=True,
            telemetry=resume_registry,
            **kwargs,
        )
        assert resume_registry.counters["checkpoint.resume_hits"] == 4
        assert resume_registry.counters.get("checkpoint.resume_misses", 0) == 0
        assert "checkpoint.records" not in resume_registry.counters

    def test_partial_resume_counts_misses(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        kwargs = dict(steps=10_000, repeats=2, seed=3)
        latency_sweep(
            cas_counter, make_counter_memory, [2], checkpoint=path, **kwargs
        )
        # Grow the sweep: the stored [2] checkpoint no longer matches a
        # [2, 4] fingerprint, so resume the same sweep minus one record.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        registry = MetricsRegistry()
        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            checkpoint=path,
            resume=True,
            telemetry=registry,
            **kwargs,
        )
        assert registry.counters["checkpoint.resume_hits"] == 1
        assert registry.counters["checkpoint.resume_misses"] == 1
        assert registry.counters["checkpoint.records"] == 1


class TestExecutorTelemetry:
    def test_clean_run_counts_tasks(self):
        registry = MetricsRegistry()
        executor = ResilientExecutor(
            square_worker, max_workers=2, policy=FAST, telemetry=registry
        )
        results = executor.run(list(range(8)))
        assert len(results) == 8
        assert registry.counters["executor.runs"] == 1
        assert registry.counters["executor.tasks_completed"] == 8
        assert registry.counters["executor.retries"] == 0
        assert "executor.backoff_seconds" not in registry.histograms

    def test_retries_and_backoff_recorded(self, tmp_path):
        registry = MetricsRegistry()
        executor = ResilientExecutor(
            flaky_worker, max_workers=2, policy=FAST, telemetry=registry
        )
        results = executor.run(list(range(4)), args=(str(tmp_path),))
        assert len(results) == 4
        assert registry.counters["executor.retries"] >= 1
        backoff = registry.histograms["executor.backoff_seconds"]
        assert backoff.count == 1
        assert backoff.total > 0
        assert backoff.total == pytest.approx(executor.stats.backoff_seconds)


class TestUniformityObserver:
    def test_uniform_scheduler_tv_near_zero(self):
        registry = MetricsRegistry()
        observer = SchedulerUniformityObserver().attach(registry)
        run_simulator(steps=50_000, n=4, telemetry=registry)
        assert observer.runs == 1
        assert observer.total_variation_distance(4) < 0.02
        assert observer.fairness_ratio(4) > 0.9

    def test_adversarial_scheduler_tv_clearly_positive(self):
        registry = MetricsRegistry()
        observer = SchedulerUniformityObserver().attach(registry)
        simulator = Simulator(
            cas_counter(),
            AdversarialScheduler.starve(victim=0),
            n_processes=4,
            memory=make_counter_memory(),
            rng=1,
            telemetry=registry,
        )
        simulator.run(10_000)
        # The starvation adversary never schedules the victim: its share
        # is 0, so TV distance is exactly 1/n and fairness collapses.
        assert observer.total_variation_distance(4) == pytest.approx(0.25)
        assert observer.fairness_ratio(4) == 0.0

    def test_buckets_are_per_process_count(self):
        observer = SchedulerUniformityObserver()
        observer.observe_counts([10, 10])
        observer.observe_counts([5, 5, 5, 5])
        assert observer.n_values == [2, 4]
        assert observer.total_variation_distance(2) == 0.0
        with pytest.raises(ValueError, match="pass n="):
            observer.total_variation_distance()
        with pytest.raises(ValueError, match="no runs with n=8"):
            observer.total_variation_distance(8)

    def test_observe_recorder(self):
        simulator, _ = run_simulator(steps=5_000)
        observer = SchedulerUniformityObserver()
        observer.observe_recorder(simulator.recorder)
        assert observer.n_values == [4]
        np.testing.assert_array_equal(
            observer._counts[4],
            [simulator.recorder.steps[pid] for pid in range(4)],
        )

    def test_report_aggregates(self):
        observer = SchedulerUniformityObserver()
        observer.observe_counts([10, 10])
        observer.observe_counts([20, 0])
        report = observer.report()
        assert report["runs"] == 2
        assert report["per_n"]["2"]["steps"] == 40
        assert report["max_tv_distance"] == pytest.approx(0.25)

    def test_empty_observer_rejects_queries(self):
        observer = SchedulerUniformityObserver()
        with pytest.raises(ValueError, match="no runs observed"):
            observer.total_variation_distance()
        assert observer.report() == {"runs": 0, "per_n": {}}


class TestRunReport:
    def test_round_trips_through_json(self, tmp_path):
        registry = MetricsRegistry()
        observer = SchedulerUniformityObserver().attach(registry)
        run_simulator(steps=10_000, telemetry=registry)
        registry.set_gauge("g", 1.5)
        with registry.span("block_seconds"):
            pass
        path = tmp_path / "report.json"
        written = write_run_report(
            path,
            registry,
            command="test",
            observer=observer,
            extra={"workload": "cas-counter"},
        )
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["schema"] == 2
        assert loaded["command"] == "test"
        assert loaded["extra"] == {"workload": "cas-counter"}
        assert loaded["metrics"] == registry.report()
        assert loaded["uniformity"]["runs"] == 1

    def test_extras_cannot_clobber_reserved_keys(self, tmp_path):
        # Schema 1 merged ``extra`` into the top level *before* setting
        # metrics/uniformity: caller keys silently overwrote
        # schema/command and were in turn overwritten by reserved keys.
        # Schema 2 namespaces extras, preserving both sides verbatim.
        registry = MetricsRegistry()
        registry.inc("c")
        path = tmp_path / "report.json"
        extra = {"schema": "bogus", "command": "evil", "metrics": {"x": 1}}
        written = write_run_report(
            path, registry, command="real", extra=extra
        )
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["schema"] == 2
        assert loaded["command"] == "real"
        assert loaded["metrics"] == registry.report()
        assert loaded["extra"] == extra

    def test_observer_optional(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("c")
        path = tmp_path / "report.json"
        write_run_report(path, registry)
        loaded = json.loads(path.read_text())
        assert "uniformity" not in loaded
        assert loaded["metrics"]["counters"] == {"c": 1}
