"""Tests for the Markov-modulated scheduler (time-correlated bias)."""

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import measure_latencies
from repro.core.scheduler import MarkovModulatedScheduler
from repro.sim.executor import Simulator


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMechanics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedScheduler(slowdown=0.5)
        with pytest.raises(ValueError):
            MarkovModulatedScheduler(mean_dwell=0.0)

    def test_threshold_positive(self):
        sched = MarkovModulatedScheduler(slowdown=4.0)
        theta = sched.threshold(8)
        assert 0 < theta < 1 / 8

    def test_selects_from_active(self, rng):
        sched = MarkovModulatedScheduler()
        for t in range(200):
            assert sched.select(t, [3, 5, 9], rng) in (3, 5, 9)

    def test_long_run_shares_mildly_skewed(self, rng):
        # Each process is slowed 1/(n+1) of the time, so long-run shares
        # stay near-uniform even though short windows are biased.
        n = 6
        sched = MarkovModulatedScheduler(slowdown=4.0, mean_dwell=100.0)
        counts = np.zeros(n)
        for t in range(150_000):
            counts[sched.select(t, list(range(n)), rng)] += 1
        shares = counts / counts.sum()
        assert np.all(shares > 0.5 / n)
        assert shares.max() - shares.min() < 0.08

    def test_bias_is_time_correlated(self, rng):
        # Split the schedule into windows; the per-window argmin process
        # should persist across adjacent windows more often than chance.
        n = 4
        sched = MarkovModulatedScheduler(slowdown=8.0, mean_dwell=400.0)
        window = 200
        minima = []
        for w in range(100):
            counts = np.zeros(n)
            for t in range(window):
                counts[sched.select(w * window + t, list(range(n)), rng)] += 1
            minima.append(int(np.argmin(counts)))
        repeats = sum(1 for a, b in zip(minima, minima[1:]) if a == b)
        assert repeats > 30  # ~25 expected by chance for n=4


class TestPaperPredictionsSurvive:
    def test_everyone_completes(self):
        n = 6
        sim = Simulator(
            cas_counter(),
            MarkovModulatedScheduler(slowdown=4.0, mean_dwell=300.0),
            n_processes=n,
            memory=make_counter_memory(),
            rng=1,
        )
        result = sim.run(150_000)
        for pid in range(n):
            assert result.completions_of(pid) > 0

    def test_system_latency_near_uniform_prediction(self):
        n = 8
        m = measure_latencies(
            cas_counter(),
            MarkovModulatedScheduler(slowdown=4.0, mean_dwell=200.0),
            n_processes=n,
            steps=300_000,
            memory=make_counter_memory(),
            rng=2,
        )
        exact = scu_system_latency_exact(n)
        # Correlated bias costs something but the sqrt(n) regime holds:
        # within 25% of the uniform model's exact answer.
        assert m.system_latency == pytest.approx(exact, rel=0.25)
