"""Tests for the paper's three liftings (Lemmas 5, 10, 13)."""

import pytest

from repro.core.lifting import (
    verify_counter_lifting,
    verify_parallel_lifting,
    verify_scu_lifting,
)


class TestLemma5ScanValidate:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_lifting_holds(self, n):
        report = verify_scu_lifting(n)
        assert report.is_lifting
        assert report.max_flow_error < 1e-10
        assert report.max_stationary_error < 1e-10


class TestLemma10Parallel:
    @pytest.mark.parametrize("n,q", [(2, 2), (3, 3), (4, 2), (2, 6), (5, 3)])
    def test_lifting_holds(self, n, q):
        report = verify_parallel_lifting(n, q)
        assert report.is_lifting
        assert report.max_flow_error < 1e-10


class TestLemma13Counter:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8, 10])
    def test_lifting_holds(self, n):
        report = verify_counter_lifting(n)
        assert report.is_lifting
        assert report.max_flow_error < 1e-10
        assert report.max_stationary_error < 1e-10
