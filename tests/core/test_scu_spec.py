"""Unit tests for the SCU(q, s) class descriptor (repro.core.scu)."""

import pytest

from repro.core.scu import SCU
from repro.core.scheduler import UniformStochasticScheduler


class TestValidation:
    def test_valid_spec(self):
        spec = SCU(q=2, s=3)
        assert spec.q == 2
        assert spec.s == 3

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError):
            SCU(q=-1, s=1)

    def test_zero_s_rejected(self):
        with pytest.raises(ValueError):
            SCU(q=0, s=0)

    def test_frozen(self):
        spec = SCU(q=0, s=1)
        with pytest.raises(AttributeError):
            spec.q = 5


class TestPredictions:
    def test_steps_per_attempt(self):
        assert SCU(q=0, s=3).steps_per_attempt() == 4

    def test_predicted_latencies_consistent(self):
        spec = SCU(q=1, s=2)
        n = 16
        assert spec.predicted_individual_latency(n) == pytest.approx(
            n * spec.predicted_system_latency(n)
        )

    def test_worst_case(self):
        assert SCU(q=1, s=2).worst_case_system_latency(10) == 21.0


class TestExactAndMeasured:
    def test_exact_system_latency_scu01_matches_system_chain(self):
        from repro.chains.scu import scu_system_latency_exact

        spec = SCU(q=0, s=1)
        for n in (2, 3, 5):
            assert spec.exact_system_latency(n) == pytest.approx(
                scu_system_latency_exact(n), rel=1e-9
            )

    def test_exact_individual_is_n_times_system(self):
        spec = SCU(q=1, s=2)
        assert spec.exact_individual_latency(4) == pytest.approx(
            4 * spec.exact_system_latency(4)
        )

    def test_measure_matches_exact(self):
        spec = SCU(q=1, s=1)
        n = 4
        measured = spec.measure(n, 150_000, rng=0)
        assert measured.system_latency == pytest.approx(
            spec.exact_system_latency(n), rel=0.05
        )

    def test_measure_respects_scheduler_override(self):
        from repro.core.scheduler import SkewedStochasticScheduler

        spec = SCU(q=0, s=1)
        skewed = SkewedStochasticScheduler([1.0, 5.0])
        m = spec.measure(2, 20_000, scheduler=skewed, rng=1)
        assert m.total_completions > 0

    def test_memory_has_registers(self):
        spec = SCU(q=0, s=3)
        memory = spec.memory()
        assert "R" in memory
        assert "R_aux1" in memory
        assert "R_aux2" in memory
