"""Tests for sweep checkpoints (repro.core.checkpoint)."""

import json

import pytest

from repro.core.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointMismatchError,
    SweepCheckpoint,
    crash_config_hash,
    flush_active_checkpoints,
    sweep_fingerprint,
)


def fingerprint(**overrides):
    base = dict(
        seed=7,
        steps=10_000,
        engine="batched",
        n_values=[2, 4],
        repeats=3,
        burn_in=None,
        crash_times=None,
    )
    base.update(overrides)
    return sweep_fingerprint(**base)


class TestCrashConfigHash:
    def test_none_hashes_to_none(self):
        assert crash_config_hash(None, [2, 4]) == "none"

    def test_dict_and_equivalent_callable_hash_equal(self):
        mapping = {0: 100, 1: 200}
        assert crash_config_hash(mapping, [2, 4]) == crash_config_hash(
            lambda n: mapping, [2, 4]
        )

    def test_different_schedules_hash_differently(self):
        assert crash_config_hash({0: 100}, [2]) != crash_config_hash(
            {0: 101}, [2]
        )

    def test_callable_resolved_per_sweep_point(self):
        # A callable schedule that varies with n must hash differently
        # from one that does not.
        varying = crash_config_hash(lambda n: {0: n}, [2, 4])
        constant = crash_config_hash(lambda n: {0: 2}, [2, 4])
        assert varying != constant


class TestOpenAndLoad:
    def test_header_written_and_fingerprint_round_trips(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.close()
        assert SweepCheckpoint.load_fingerprint(path) == fingerprint()

    def test_record_then_resume_restores_triples_exactly(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.25, 0.5, 1.0))
        cp.record(4, 2, (3.875, 0.125, 0.9999999999999999))
        cp.close()
        resumed = SweepCheckpoint.open(path, fingerprint(), resume=True)
        assert resumed.completed == {
            (2, 0): (1.25, 0.5, 1.0),
            (4, 2): (3.875, 0.125, 0.9999999999999999),
        }
        resumed.close()

    def test_existing_file_without_resume_refused(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepCheckpoint.open(path, fingerprint()).close()
        with pytest.raises(CheckpointError, match="resume=True"):
            SweepCheckpoint.open(path, fingerprint())

    def test_resume_on_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint(), resume=True)
        assert cp.completed == {}
        cp.close()
        assert path.exists()

    def test_fingerprint_mismatch_rejected_loudly(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepCheckpoint.open(path, fingerprint()).close()
        with pytest.raises(CheckpointMismatchError, match="steps"):
            SweepCheckpoint.open(
                path, fingerprint(steps=20_000), resume=True
            )

    def test_crash_schedule_change_is_a_mismatch(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepCheckpoint.open(path, fingerprint()).close()
        with pytest.raises(CheckpointMismatchError, match="crash_hash"):
            SweepCheckpoint.open(
                path,
                fingerprint(crash_times={0: 50}),
                resume=True,
            )

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        header = {
            "kind": "header",
            "version": SCHEMA_VERSION + 1,
            "fingerprint": fingerprint(),
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="schema version"):
            SweepCheckpoint.open(path, fingerprint(), resume=True)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.0, 2.0, 3.0))
        cp.close()
        with path.open("a") as handle:
            handle.write('{"kind": "point", "n": 4, "r"')  # torn mid-append
        resumed = SweepCheckpoint.open(path, fingerprint(), resume=True)
        assert resumed.completed == {(2, 0): (1.0, 2.0, 3.0)}
        resumed.close()

    def test_resume_over_torn_tail_then_append_and_reload(self, tmp_path):
        # The crash -> resume -> crash -> resume cycle: appending after a
        # torn tail must start a fresh line, not glue onto the partial
        # one and corrupt the journal.
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.0, 2.0, 3.0))
        cp.close()
        with path.open("a") as handle:
            handle.write('{"kind": "point", "n": 4, "r"')  # torn mid-append
        resumed = SweepCheckpoint.open(path, fingerprint(), resume=True)
        resumed.record(4, 0, (4.0, 5.0, 6.0))
        resumed.record(4, 1, (7.0, 8.0, 9.0))
        resumed.close()
        # Nothing garbled, nothing dropped, and a second resume is clean.
        assert SweepCheckpoint.load_completed(path) == {
            (2, 0): (1.0, 2.0, 3.0),
            (4, 0): (4.0, 5.0, 6.0),
            (4, 1): (7.0, 8.0, 9.0),
        }
        again = SweepCheckpoint.open(path, fingerprint(), resume=True)
        assert len(again.completed) == 3
        again.close()

    def test_missing_final_newline_repaired_without_data_loss(self, tmp_path):
        # A whole record whose trailing newline was torn keeps the
        # record: the repair restores the newline rather than truncating.
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.0, 2.0, 3.0))
        cp.close()
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        resumed = SweepCheckpoint.open(path, fingerprint(), resume=True)
        resumed.record(2, 1, (4.0, 5.0, 6.0))
        resumed.close()
        assert SweepCheckpoint.load_completed(path) == {
            (2, 0): (1.0, 2.0, 3.0),
            (2, 1): (4.0, 5.0, 6.0),
        }

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.0, 2.0, 3.0))
        cp.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            SweepCheckpoint.open(path, fingerprint(), resume=True)


class TestMalformedRecords:
    """JSON-valid but structurally broken point records must surface as
    CheckpointError naming the line, never as raw KeyError/IndexError
    (the _read bug: record["v"][2] was indexed without validation)."""

    def _with_record(self, tmp_path, record) -> "SweepCheckpoint":
        path = tmp_path / "cp.jsonl"
        SweepCheckpoint.open(path, fingerprint()).close()
        with path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        return path

    @pytest.mark.parametrize(
        "record",
        [
            {"kind": "point", "n": 2, "r": 0},  # no v at all
            {"kind": "point", "n": 2, "v": [1.0, 2.0, 3.0]},  # no r
            {"kind": "point", "r": 0, "v": [1.0, 2.0, 3.0]},  # no n
            {"kind": "point", "n": 2, "r": 0, "v": [1.0, 2.0]},  # short v
            {"kind": "point", "n": 2, "r": 0, "v": [1.0, 2.0, 3.0, 4.0]},
            {"kind": "point", "n": 2, "r": 0, "v": "nope"},
            {"kind": "point", "n": 2, "r": 0, "v": [1.0, None, 3.0]},
            {"kind": "point", "n": 2, "r": 0, "v": [1.0, True, 3.0]},
            {"kind": "point", "n": "2", "r": 0, "v": [1.0, 2.0, 3.0]},
            {"kind": "point", "n": 2, "r": True, "v": [1.0, 2.0, 3.0]},
            ["kind", "point"],  # not even a dict
        ],
    )
    def test_structurally_invalid_record_raises_checkpoint_error(
        self, tmp_path, record
    ):
        path = self._with_record(tmp_path, record)
        with pytest.raises(CheckpointError, match="line 2"):
            SweepCheckpoint.open(path, fingerprint(), resume=True)

    def test_valid_int_valued_triple_still_accepted(self, tmp_path):
        # Structural validation must not tighten the accepted format:
        # JSON integers in v are legal floats.
        path = self._with_record(
            tmp_path, {"kind": "point", "n": 2, "r": 0, "v": [1, 2, 3]}
        )
        assert SweepCheckpoint.load_completed(path) == {
            (2, 0): (1.0, 2.0, 3.0)
        }


class TestRecording:
    def test_missing_lists_unrecorded_pairs_in_sweep_order(self, tmp_path):
        cp = SweepCheckpoint.open(tmp_path / "cp.jsonl", fingerprint())
        cp.record(2, 1, (1.0, 1.0, 1.0))
        assert cp.missing([2, 4], 2) == [(2, 0), (4, 0), (4, 1)]
        cp.close()

    def test_record_after_close_raises(self, tmp_path):
        cp = SweepCheckpoint.open(tmp_path / "cp.jsonl", fingerprint())
        cp.close()
        with pytest.raises(CheckpointError, match="closed"):
            cp.record(2, 0, (1.0, 1.0, 1.0))

    def test_rerecorded_key_last_wins(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint.open(path, fingerprint())
        cp.record(2, 0, (1.0, 1.0, 1.0))
        cp.record(2, 0, (2.0, 2.0, 2.0))
        cp.close()
        assert SweepCheckpoint.load_completed(path)[(2, 0)] == (2.0, 2.0, 2.0)

    def test_context_manager_closes(self, tmp_path):
        with SweepCheckpoint.open(tmp_path / "cp.jsonl", fingerprint()) as cp:
            cp.record(2, 0, (1.0, 1.0, 1.0))
        assert cp.closed

    def test_flush_active_reaches_open_checkpoints(self, tmp_path):
        cp = SweepCheckpoint.open(tmp_path / "cp.jsonl", fingerprint())
        cp.record(2, 0, (1.0, 1.0, 1.0))
        assert flush_active_checkpoints() >= 1
        # The record is durable on disk without close().
        assert SweepCheckpoint.load_completed(cp.path) == {
            (2, 0): (1.0, 1.0, 1.0)
        }
        cp.close()
        assert flush_active_checkpoints() == 0


class TestWriterLock:
    """Advisory single-writer locking on the checkpoint journal."""

    def test_second_writer_fails_loudly_with_pid(self, tmp_path):
        import os

        path = tmp_path / "cp.jsonl"
        first = SweepCheckpoint.open(path, fingerprint())
        try:
            with pytest.raises(CheckpointError) as info:
                SweepCheckpoint.open(path, fingerprint(), resume=True)
            assert str(os.getpid()) in str(info.value)
            assert "one writer" in str(info.value)
        finally:
            first.close()

    def test_close_releases_the_lock(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepCheckpoint.open(path, fingerprint()).close()
        # A second sequential writer succeeds and no sidecar remains.
        SweepCheckpoint.open(path, fingerprint(), resume=True).close()
        assert not (tmp_path / "cp.jsonl.lock").exists()

    def test_failed_open_releases_the_lock(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with SweepCheckpoint.open(path, fingerprint()) as cp:
            cp.record(2, 0, (1.0, 1.0, 1.0))
        with pytest.raises(CheckpointMismatchError):
            SweepCheckpoint.open(path, fingerprint(seed=99), resume=True)
        # The mismatch rejection did not leave the lock held.
        SweepCheckpoint.open(path, fingerprint(), resume=True).close()
        assert not (tmp_path / "cp.jsonl.lock").exists()
