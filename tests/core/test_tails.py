"""Tests for per-invocation latency tails (repro.core.tails)."""

import numpy as np
import pytest

from repro.core.tails import (
    invocation_durations,
    tail_summaries_by_method,
    tail_summary,
)
from repro.sim.history import History


def simple_history():
    history = History()
    history.invoke(1, 0, "op")
    history.respond(3, 0, "op")      # duration 2
    history.invoke(4, 1, "op")
    history.respond(10, 1, "op")     # duration 6
    history.invoke(11, 0, "op")      # pending
    return history


class TestDurations:
    def test_completed_durations(self):
        durations = invocation_durations(simple_history(), end_time=20)
        assert sorted(durations.tolist()) == [2, 6]

    def test_pending_counts_elapsed(self):
        durations = invocation_durations(
            simple_history(), end_time=20, include_pending=True
        )
        assert sorted(durations.tolist()) == [2, 6, 9]

    def test_empty_history(self):
        assert invocation_durations(History()).size == 0


class TestSummary:
    def test_fields(self):
        summary = tail_summary(simple_history(), end_time=20)
        assert summary.count == 3
        assert summary.pending == 1
        assert summary.max == 9
        assert summary.p50 == 6.0

    def test_tail_ratio(self):
        summary = tail_summary(simple_history(), end_time=20)
        assert summary.p99_over_p50 > 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tail_summary(History())


class TestByMethod:
    def test_split(self):
        history = History()
        history.invoke(1, 0, "push")
        history.respond(2, 0, "push")
        history.invoke(3, 0, "pop")
        history.respond(7, 0, "pop")
        out = tail_summaries_by_method(history)
        assert out["push"].mean == 1.0
        assert out["pop"].mean == 4.0


class TestPaperMotivation:
    def test_light_tail_under_uniform_heavy_under_adversary(self):
        # The motivating observation: lock-free ops have light tails
        # under realistic scheduling; the worst case lives only under
        # adversaries.
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.scheduler import (
            AdversarialScheduler,
            UniformStochasticScheduler,
        )
        from repro.sim.executor import Simulator

        def run(scheduler):
            sim = Simulator(
                cas_counter(),
                scheduler,
                n_processes=8,
                memory=make_counter_memory(),
                record_history=True,
                rng=0,
            )
            result = sim.run(40_000)
            return tail_summary(result.history, end_time=result.steps_executed)

        uniform = run(UniformStochasticScheduler())
        adversarial = run(AdversarialScheduler.starve(victim=0))
        # Near-geometric completion times: p99/p50 ~ log(100)/log(2) ~ 6.6.
        assert uniform.p99_over_p50 < 8.0
        assert uniform.max < 2_000
        # The starved victim's pending invocation dominates the tail.
        assert adversarial.max > 30_000
