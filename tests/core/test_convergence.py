"""Tests for simulation convergence diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import (
    completion_gaps,
    geweke_z,
    running_latency,
    split_half_diagnostic,
)
from repro.sim.trace import TraceRecorder


def recorder_from_times(times):
    recorder = TraceRecorder(1)
    for t in times:
        recorder.on_completion(int(t), 0)
    return recorder


class TestCompletionGaps:
    def test_gaps(self):
        recorder = recorder_from_times([10, 15, 25])
        assert completion_gaps(recorder).tolist() == [5, 10]

    def test_burn_in(self):
        recorder = recorder_from_times([1, 100, 110])
        assert completion_gaps(recorder, burn_in=50).tolist() == [10]

    def test_too_few(self):
        with pytest.raises(ValueError):
            completion_gaps(recorder_from_times([5]))


class TestSplitHalf:
    def test_stationary_series_passes(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(10, size=2_000)).astype(int)
        diag = split_half_diagnostic(recorder_from_times(times))
        assert diag.is_stationary(tolerance=0.1)

    def test_drifting_series_fails(self):
        # Gaps double halfway through.
        times = np.cumsum([10] * 500 + [30] * 500)
        diag = split_half_diagnostic(recorder_from_times(times))
        assert not diag.is_stationary(tolerance=0.1)
        assert diag.relative_drift > 0.5


class TestGeweke:
    def test_stationary_small_z(self):
        rng = np.random.default_rng(1)
        series = rng.normal(5, 1, size=5_000)
        assert abs(geweke_z(series)) < 3.0

    def test_trending_large_z(self):
        series = np.linspace(0, 10, 5_000) + np.random.default_rng(2).normal(
            0, 0.1, 5_000
        )
        assert abs(geweke_z(series)) > 5.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            geweke_z([1.0, 2.0], early=0.7, late=0.7)


class TestRunningLatency:
    def test_settles_for_real_simulation(self):
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=8,
            memory=make_counter_memory(),
            rng=0,
        )
        sim.run(100_000)
        cut_times, estimates = running_latency(sim.recorder, points=20)
        # The last quarter of the curve is flat within 5%.
        tail = estimates[-5:]
        assert tail.max() / tail.min() < 1.05
        assert cut_times[-1] > cut_times[0]

    def test_needs_enough_completions(self):
        with pytest.raises(ValueError):
            running_latency(recorder_from_times(range(10)), points=50)

    def test_default_burn_in_passes_diagnostics(self):
        # Justify measure_latencies' default 10% burn-in: the remaining
        # series is stationary by both diagnostics.
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=16,
            memory=make_counter_memory(),
            rng=1,
        )
        sim.run(150_000)
        diag = split_half_diagnostic(sim.recorder, burn_in=15_000)
        assert diag.is_stationary(tolerance=0.05)
        gaps = completion_gaps(sim.recorder, burn_in=15_000)
        assert abs(geweke_z(gaps)) < 3.0
