"""Tests for the chunked columnar result store (repro.core.store)."""

import json

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    sweep_fingerprint,
)
from repro.core.store import (
    METRIC_COLUMNS,
    STORE_SCHEMA_VERSION,
    ColumnarSweepStore,
)
from repro.core.sweep import latency_sweep, parallel_sweep


def fingerprint(**overrides):
    base = dict(
        seed=7,
        steps=10_000,
        engine="batched",
        n_values=[2, 4],
        repeats=3,
        burn_in=None,
        crash_times=None,
    )
    base.update(overrides)
    return sweep_fingerprint(**base)


class TestOpenAndLoad:
    def test_header_written_and_fingerprint_round_trips(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        assert ColumnarSweepStore.load_fingerprint(path) == fingerprint()
        header = json.loads((path / "header.json").read_text())
        assert header["version"] == STORE_SCHEMA_VERSION
        assert header["metrics"] == list(METRIC_COLUMNS)

    def test_record_then_resume_restores_triples_exactly(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint())
        store.record(2, 0, (1.25, 0.5, 1.0))
        store.record(4, 2, (3.875, 0.125, 0.9999999999999999))
        store.close()
        resumed = ColumnarSweepStore.open(path, fingerprint(), resume=True)
        assert resumed.completed == {
            (2, 0): (1.25, 0.5, 1.0),
            (4, 2): (3.875, 0.125, 0.9999999999999999),
        }
        resumed.close()

    def test_existing_store_without_resume_refused(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        with pytest.raises(CheckpointError, match="resume=True"):
            ColumnarSweepStore.open(path, fingerprint())

    def test_resume_on_missing_directory_starts_fresh(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint(), resume=True)
        assert store.completed == {}
        store.close()
        assert (path / "header.json").exists()

    def test_fingerprint_mismatch_rejected_loudly(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        with pytest.raises(CheckpointMismatchError, match="steps"):
            ColumnarSweepStore.open(
                path, fingerprint(steps=20_000), resume=True
            )

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        header = json.loads((path / "header.json").read_text())
        header["version"] = STORE_SCHEMA_VERSION + 1
        (path / "header.json").write_text(json.dumps(header))
        with pytest.raises(CheckpointError, match="schema version"):
            ColumnarSweepStore.open(path, fingerprint(), resume=True)

    def test_corrupt_header_is_an_error(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        (path / "header.json").write_text("not json")
        with pytest.raises(CheckpointError, match="header"):
            ColumnarSweepStore.open(path, fingerprint(), resume=True)


class TestCompaction:
    def test_tail_compacts_into_chunks_at_threshold(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(
            path, fingerprint(n_values=[2], repeats=10), compact_every=4
        )
        for r in range(10):
            store.record(2, r, (float(r), 0.5, 1.0))
        # Two full chunks compacted; two records still in the tail.
        assert store.chunk_count == 2
        assert store.pending_tail_records == 2
        store.close()
        # close() compacts the remainder.
        assert len(sorted(path.glob("chunk-*.npz"))) == 3
        assert (path / "tail.jsonl").read_text() == ""
        loaded = ColumnarSweepStore.load_completed(path)
        assert loaded == {
            (2, r): (float(r), 0.5, 1.0) for r in range(10)
        }

    def test_chunks_plus_tail_equal_tail_only(self, tmp_path):
        triples = {
            (n, r): (n + r / 7.0, 1.0 / (r + 1), 0.25 * r)
            for n in (2, 4)
            for r in range(5)
        }
        compacted_path = tmp_path / "compacted"
        tail_path = tmp_path / "tail-only"
        fp = fingerprint(repeats=5)
        with ColumnarSweepStore.open(
            compacted_path, fp, compact_every=3
        ) as compacted:
            with ColumnarSweepStore.open(
                tail_path, fp, compact_every=10_000
            ) as tail_only:
                for (n, r), triple in triples.items():
                    compacted.record(n, r, triple)
                    tail_only.record(n, r, triple)
                # Don't let the tail-only store compact on close.
                assert tail_only.pending_tail_records == len(triples)
                tail_only.flush()
                assert ColumnarSweepStore.load_completed(
                    tail_path
                ) == ColumnarSweepStore.load_completed(compacted_path) == {
                    key: triples[key] for key in triples
                }

    def test_crash_between_chunk_write_and_truncate_dedups(self, tmp_path):
        # Compaction renames the chunk into place *before* truncating
        # the tail; simulate a crash in that window by recreating the
        # tail lines after compaction.  Load must last-wins dedup.
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint(), compact_every=100)
        store.record(2, 0, (1.0, 2.0, 3.0))
        store.record(2, 1, (4.0, 5.0, 6.0))
        tail_bytes = (path / "tail.jsonl").read_bytes()
        store.compact()
        (path / "tail.jsonl").write_bytes(tail_bytes)  # the crash window
        store.close()
        assert ColumnarSweepStore.load_completed(path) == {
            (2, 0): (1.0, 2.0, 3.0),
            (2, 1): (4.0, 5.0, 6.0),
        }

    def test_corrupt_chunk_is_an_error(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint(), compact_every=1)
        store.record(2, 0, (1.0, 2.0, 3.0))
        store.close()
        chunk = next(path.glob("chunk-*.npz"))
        chunk.write_bytes(b"garbage not a zipfile")
        with pytest.raises(CheckpointError, match="corrupt"):
            ColumnarSweepStore.open(path, fingerprint(), resume=True)

    def test_torn_final_tail_line_tolerated_and_repaired(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint())
        store.record(2, 0, (1.0, 2.0, 3.0))
        store.close()
        with (path / "tail.jsonl").open("a") as handle:
            handle.write('{"kind": "point", "n": 4, "r"')  # torn mid-append
        resumed = ColumnarSweepStore.open(path, fingerprint(), resume=True)
        assert resumed.completed == {(2, 0): (1.0, 2.0, 3.0)}
        resumed.record(4, 0, (4.0, 5.0, 6.0))
        resumed.close()
        assert ColumnarSweepStore.load_completed(path) == {
            (2, 0): (1.0, 2.0, 3.0),
            (4, 0): (4.0, 5.0, 6.0),
        }

    def test_corrupt_middle_tail_line_is_an_error(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint())
        store.record(2, 0, (1.0, 2.0, 3.0))
        store.record(2, 1, (4.0, 5.0, 6.0))
        store.close()
        # close() compacted; rebuild a tail with garbage in the middle —
        # a non-final garbage line is never a torn tail.
        (path / "tail.jsonl").write_text(
            '{"kind": "point", "n": 8, "r": 0, "v": [1.0, 2.0, 3.0]}\n'
            "garbage\n"
            '{"kind": "point", "n": 8, "r": 1, "v": [4.0, 5.0, 6.0]}\n'
        )
        with pytest.raises(CheckpointError, match="corrupt"):
            ColumnarSweepStore.open(path, fingerprint(), resume=True)

    def test_malformed_tail_record_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "store"
        ColumnarSweepStore.open(path, fingerprint()).close()
        (path / "tail.jsonl").write_text(
            '{"kind": "point", "n": 2, "r": 0, "v": [1.0]}\n'
        )
        with pytest.raises(CheckpointError, match="line 1"):
            ColumnarSweepStore.open(path, fingerprint(), resume=True)


class TestRecording:
    def test_missing_lists_unrecorded_pairs_in_sweep_order(self, tmp_path):
        store = ColumnarSweepStore.open(tmp_path / "store", fingerprint())
        store.record(2, 1, (1.0, 1.0, 1.0))
        assert store.missing([2, 4], 2) == [(2, 0), (4, 0), (4, 1)]
        store.close()

    def test_record_after_close_raises(self, tmp_path):
        store = ColumnarSweepStore.open(tmp_path / "store", fingerprint())
        store.close()
        with pytest.raises(CheckpointError, match="closed"):
            store.record(2, 0, (1.0, 1.0, 1.0))

    def test_rerecorded_key_last_wins(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint(), compact_every=1)
        store.record(2, 0, (1.0, 1.0, 1.0))
        store.record(2, 0, (2.0, 2.0, 2.0))
        store.close()
        assert ColumnarSweepStore.load_completed(path)[(2, 0)] == (
            2.0,
            2.0,
            2.0,
        )

    def test_contains_covers_loaded_and_appended(self, tmp_path):
        path = tmp_path / "store"
        store = ColumnarSweepStore.open(path, fingerprint(), compact_every=1)
        store.record(2, 0, (1.0, 1.0, 1.0))
        store.close()
        resumed = ColumnarSweepStore.open(path, fingerprint(), resume=True)
        assert (2, 0) in resumed
        resumed.record(2, 1, (2.0, 2.0, 2.0))
        assert (2, 1) in resumed
        assert (4, 0) not in resumed
        resumed.close()

    def test_live_records_do_not_grow_completed(self, tmp_path):
        # ``completed`` is the resume state; a fresh million-replicate
        # sweep must not mirror every live record into it.
        store = ColumnarSweepStore.open(
            tmp_path / "store", fingerprint(), compact_every=4
        )
        for r in range(10):
            store.record(2, r, (float(r), 0.5, 1.0))
            assert store.pending_tail_records <= 4
        assert store.completed == {}
        store.close()


class TestSweepIntegration:
    KWARGS = dict(steps=15_000, repeats=3, seed=5)

    def test_store_backed_sweep_matches_bare_sweep(self, tmp_path):
        bare = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], **self.KWARGS
        )
        stored = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            store=tmp_path / "store",
            **self.KWARGS,
        )
        assert bare == stored

    def test_store_and_checkpoint_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                checkpoint=tmp_path / "cp.jsonl",
                store=tmp_path / "store",
                **self.KWARGS,
            )

    def test_interrupted_store_resume_bit_identical_to_jsonl(self, tmp_path):
        # The tentpole acceptance: a sweep checkpointed to the columnar
        # store, interrupted, and resumed is bit-identical to an
        # uninterrupted JSONL-only sweep.
        uninterrupted = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            checkpoint=tmp_path / "cp.jsonl",
            **self.KWARGS,
        )

        class Interrupt(Exception):
            pass

        def interrupt_after(count):
            def on_progress(done, total, key):
                if done >= count:
                    raise Interrupt

            return on_progress

        with pytest.raises(Interrupt):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [2, 4],
                store=tmp_path / "store",
                on_progress=interrupt_after(4),
                **self.KWARGS,
            )
        resumed = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            store=tmp_path / "store",
            resume=True,
            **self.KWARGS,
        )
        assert resumed == uninterrupted

    def test_parallel_sweep_with_store_matches_serial(self, tmp_path):
        serial = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            batched=True,
            **self.KWARGS,
        )
        parallel = parallel_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            max_workers=2,
            store=tmp_path / "store",
            **self.KWARGS,
        )
        assert serial == parallel


class TestWriterLock:
    """Advisory single-writer locking on the store directory."""

    def test_second_writer_fails_loudly_with_pid(self, tmp_path):
        import os

        first = ColumnarSweepStore.open(tmp_path / "store", fingerprint())
        try:
            with pytest.raises(CheckpointError) as info:
                ColumnarSweepStore.open(
                    tmp_path / "store", fingerprint(), resume=True
                )
            assert str(os.getpid()) in str(info.value)
        finally:
            first.close()

    def test_close_releases_the_lock(self, tmp_path):
        ColumnarSweepStore.open(tmp_path / "store", fingerprint()).close()
        ColumnarSweepStore.open(
            tmp_path / "store", fingerprint(), resume=True
        ).close()
        assert not (tmp_path / "store" / "writer.lock").exists()


class TestDegradedCompaction:
    """ENOSPC/EPERM during chunk writes degrades instead of dying."""

    @pytest.fixture(autouse=True)
    def reset_warn_flag(self):
        import repro.core.store as store_module

        store_module._warned_compact_failure = False
        yield
        store_module._warned_compact_failure = False

    def test_compact_failure_warns_once_and_keeps_tail(
        self, tmp_path, monkeypatch
    ):
        import errno

        import repro.core.store as store_module
        from repro.core.telemetry import MetricsRegistry

        def refuse(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device")

        telemetry = MetricsRegistry()
        store = ColumnarSweepStore.open(
            tmp_path / "store", fingerprint(), telemetry=telemetry
        )
        store.record(2, 0, (1.0, 2.0, 3.0))
        store.record(2, 1, (4.0, 5.0, 6.0))
        monkeypatch.setattr(store_module.tempfile, "mkstemp", refuse)
        with pytest.warns(RuntimeWarning, match="compaction failed"):
            assert store.compact() == 0
        # warned once: the second failure is silent
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert store.compact() == 0
        assert telemetry.counters["store.compaction_failures"] == 2
        # records stayed durable in the tail; recording continues
        store.record(4, 0, (7.0, 8.0, 9.0))
        monkeypatch.undo()
        store.close()  # close() compacts successfully once space returns
        resumed = ColumnarSweepStore.open(
            tmp_path / "store", fingerprint(), resume=True
        )
        try:
            assert resumed.completed == {
                (2, 0): (1.0, 2.0, 3.0),
                (2, 1): (4.0, 5.0, 6.0),
                (4, 0): (7.0, 8.0, 9.0),
            }
        finally:
            resumed.close()

    def test_sweep_survives_compaction_failure(self, tmp_path, monkeypatch):
        import errno

        import repro.core.store as store_module

        def refuse(*args, **kwargs):
            raise OSError(errno.EPERM, "read-only filesystem")

        sweep_kwargs = dict(steps=400, repeats=2, seed=1, batched=True)
        sweep_fp = fingerprint(
            seed=1, steps=400, n_values=[2], repeats=2
        )
        # The header must exist before the disk "fills": only chunk
        # writes (an optimisation) may degrade, never the journal.
        ColumnarSweepStore.open(tmp_path / "store", sweep_fp).close()
        monkeypatch.setattr(store_module.tempfile, "mkstemp", refuse)
        with pytest.warns(RuntimeWarning, match="compaction failed"):
            points = latency_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                store=tmp_path / "store",
                resume=True,
                **sweep_kwargs,
            )
        assert len(points) == 1
        monkeypatch.undo()
        direct = latency_sweep(
            cas_counter, make_counter_memory, [2], **sweep_kwargs
        )
        assert points == direct
