"""Unit tests for repro.core.latency."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.parallel import parallel_code
from repro.core.latency import (
    completion_rate,
    individual_latencies,
    individual_latency,
    measure_latencies,
    system_latency,
)
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.trace import TraceRecorder


def recorder_with_completions(times_pids, n=2):
    recorder = TraceRecorder(n)
    for time, pid in times_pids:
        recorder.on_completion(time, pid)
    return recorder


class TestSystemLatency:
    def test_uniform_gaps(self):
        recorder = recorder_with_completions([(10, 0), (20, 1), (30, 0)])
        assert system_latency(recorder) == pytest.approx(10.0)

    def test_burn_in_drops_early_completions(self):
        recorder = recorder_with_completions([(1, 0), (100, 0), (110, 1)])
        assert system_latency(recorder, burn_in=50) == pytest.approx(10.0)

    def test_too_few_completions_raises(self):
        recorder = recorder_with_completions([(5, 0)])
        with pytest.raises(ValueError, match="completions"):
            system_latency(recorder)

    def test_error_names_run_parameters(self):
        # The diagnostic must tell the user what run produced too little
        # data and how to fix it (Theorem 4 latency grows with n).
        recorder = recorder_with_completions([(5, 0)], n=7)
        recorder.on_step(1, 0)
        with pytest.raises(
            ValueError, match=r"n=7.*steps=1.*increase steps"
        ):
            system_latency(recorder)


class TestIndividualLatency:
    def test_per_process_gaps(self):
        recorder = recorder_with_completions(
            [(10, 0), (15, 1), (30, 0), (35, 1), (50, 0)]
        )
        assert individual_latency(recorder, 0) == pytest.approx(20.0)
        assert individual_latency(recorder, 1) == pytest.approx(20.0)

    def test_individual_latencies_skips_sparse_processes(self):
        recorder = recorder_with_completions([(10, 0), (20, 0), (30, 1)])
        lats = individual_latencies(recorder)
        assert 0 in lats and 1 not in lats

    def test_missing_process_raises(self):
        recorder = recorder_with_completions([(10, 0), (20, 0)])
        with pytest.raises(ValueError, match="completed"):
            individual_latency(recorder, 1)


class TestMethodLatencies:
    def test_per_method_split(self):
        from repro.core.latency import method_latencies
        from repro.sim.history import History

        history = History()
        history.invoke(1, 0, "push")
        history.respond(2, 0, "push")
        history.invoke(3, 1, "pop")
        history.respond(4, 1, "pop")
        history.invoke(5, 0, "push")
        history.respond(8, 0, "push")
        history.invoke(9, 1, "pop")
        history.respond(16, 1, "pop")
        lats = method_latencies(history)
        assert lats["push"] == pytest.approx(6.0)
        assert lats["pop"] == pytest.approx(12.0)

    def test_sparse_methods_skipped(self):
        from repro.core.latency import method_latencies
        from repro.sim.history import History

        history = History()
        history.invoke(1, 0, "once")
        history.respond(2, 0, "once")
        assert method_latencies(history) == {}

    def test_stack_workload_methods(self):
        from repro.algorithms.treiber import (
            TreiberWorkload,
            make_stack_memory,
            treiber_workload,
        )
        from repro.core.latency import method_latencies
        from repro.sim.executor import Simulator

        sim = Simulator(
            treiber_workload(TreiberWorkload(push_fraction=0.7, seed=1)),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_stack_memory(),
            record_history=True,
            rng=0,
        )
        result = sim.run(20_000)
        lats = method_latencies(result.history, burn_in=2_000)
        assert set(lats) == {"push", "pop"}
        # Pops are rarer (30%) so their inter-completion gap is larger.
        assert lats["pop"] > lats["push"]


class TestCompletionRate:
    def test_rate(self):
        recorder = recorder_with_completions([(1, 0), (2, 0), (3, 0)])
        assert completion_rate(recorder, 6) == pytest.approx(0.5)

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            completion_rate(TraceRecorder(1), 0)


class TestMeasureLatencies:
    def test_parallel_code_exact(self):
        # Lemma 11: W = q exactly, W_i = n q exactly (deterministic
        # completion pattern, so even a finite run nails it).
        m = measure_latencies(
            parallel_code(4),
            UniformStochasticScheduler(),
            n_processes=5,
            steps=50_000,
            rng=0,
        )
        assert m.system_latency == pytest.approx(4.0, rel=0.01)
        assert m.mean_individual_latency == pytest.approx(20.0, rel=0.05)
        assert m.fairness_ratio == pytest.approx(1.0, abs=0.1)

    def test_counter_under_round_robin_adversary(self):
        # Round-robin over n=2 on the CAS counter: a completion every few
        # steps; just verify the plumbing returns sane values.
        m = measure_latencies(
            cas_counter(),
            AdversarialScheduler.round_robin(),
            n_processes=2,
            steps=10_000,
            memory=make_counter_memory(),
            rng=0,
        )
        assert m.system_latency > 0
        assert m.total_completions > 0

    def test_memory_factory_alternative(self):
        m = measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=2,
            steps=5_000,
            memory_factory=make_counter_memory,
            rng=1,
        )
        assert m.total_completions > 0

    def test_memory_and_factory_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                n_processes=2,
                steps=100,
                memory=make_counter_memory(),
                memory_factory=make_counter_memory,
            )

    def test_default_burn_in(self):
        m = measure_latencies(
            parallel_code(2),
            UniformStochasticScheduler(),
            n_processes=2,
            steps=1_000,
            rng=2,
        )
        assert m.burn_in == 100

    def test_insufficient_run_raises(self):
        with pytest.raises(ValueError, match="increase steps|completions"):
            measure_latencies(
                parallel_code(50),
                UniformStochasticScheduler(),
                n_processes=10,
                steps=60,
                rng=3,
            )

    def test_insufficient_run_error_names_parameters(self):
        with pytest.raises(ValueError, match=r"n=10.*steps=60"):
            measure_latencies(
                parallel_code(50),
                UniformStochasticScheduler(),
                n_processes=10,
                steps=60,
                rng=3,
            )


class TestEnsembleLatencies:
    def test_matches_batched_measure_latencies(self):
        from repro.core.latency import measure_latencies_ensemble

        seeds = [(2, 3, r) for r in range(4)]
        measurements = measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            3,
            8_000,
            seeds,
            memory_factory=make_counter_memory,
        )
        assert len(measurements) == 4
        for seed, measurement in zip(seeds, measurements):
            assert measurement == measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                n_processes=3,
                steps=8_000,
                memory=make_counter_memory(),
                rng=seed,
                batched=True,
            )

    def test_resolve_vector_kernel_requires_kernel(self):
        from repro.core.latency import resolve_vector_kernel

        with pytest.raises(ValueError, match="vector_kernel"):
            resolve_vector_kernel(cas_counter(calls=2))

    def test_resolve_vector_kernel_accepts_kernel_directly(self):
        from repro.algorithms.counter import CounterStepKernel
        from repro.core.latency import resolve_vector_kernel

        kernel = CounterStepKernel()
        assert resolve_vector_kernel(kernel) is kernel
        assert resolve_vector_kernel(cas_counter()) == kernel


class TestBurnInValidation:
    def test_measure_latencies_rejects_burn_in_at_steps(self):
        with pytest.raises(ValueError, match="burn_in=5000 must be < steps"):
            measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                n_processes=2,
                steps=5_000,
                burn_in=5_000,
                memory=make_counter_memory(),
                rng=0,
            )

    def test_measure_latencies_rejects_negative_burn_in(self):
        with pytest.raises(ValueError, match="non-negative"):
            measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                n_processes=2,
                steps=5_000,
                burn_in=-1,
                memory=make_counter_memory(),
                rng=0,
            )

    def test_measure_latencies_ensemble_rejects_burn_in_at_steps(self):
        from repro.core.latency import measure_latencies_ensemble

        with pytest.raises(ValueError, match="must be < steps"):
            measure_latencies_ensemble(
                cas_counter(),
                UniformStochasticScheduler,
                2,
                5_000,
                [(0, 2, 0)],
                burn_in=6_000,
                memory_factory=make_counter_memory,
            )

    def test_default_burn_in_still_valid(self):
        # None (the steps // 10 default) is always accepted.
        from repro.core.latency import validate_burn_in

        validate_burn_in(None, 10)
        validate_burn_in(0, 1)
