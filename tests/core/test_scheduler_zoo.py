"""The contention-adversary zoo's schedulers and the PR 10 bugfixes.

Covers the two new departure-family schedulers
(:class:`EpsilonUniformScheduler`, :class:`ContentionScheduler`) and
pins the scheduler bugfixes: strict weight-length checks in
``threshold()``, ``AdversarialScheduler.distribution()`` refusing to
advance stateful strategies, the alternating spoiler's pid-stable
victim-crashed rotation, and the Markov-modulated threshold formula
checked against an empirical Monte-Carlo minimum frequency.
"""

import numpy as np
import pytest

from repro.core.scheduler import (
    AdversarialScheduler,
    ContentionScheduler,
    EpsilonUniformScheduler,
    LotteryScheduler,
    MarkovModulatedScheduler,
    SkewedStochasticScheduler,
)


class TestEpsilonUniform:
    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonUniformScheduler(-0.1)
        with pytest.raises(ValueError):
            EpsilonUniformScheduler(1.1)
        with pytest.raises(ValueError):
            EpsilonUniformScheduler(0.5, favored=-1)

    def test_distribution_closed_form(self):
        sched = EpsilonUniformScheduler(0.4, favored=2)
        dist = sched.distribution(0, [0, 1, 2, 3])
        assert dist[2] == pytest.approx(0.6 / 4 + 0.4)
        for pid in (0, 1, 3):
            assert dist[pid] == pytest.approx(0.6 / 4)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_tv_distance_is_epsilon_scaled(self):
        # TV from uniform with all n active: eps * (1 - 1/n).
        for eps, n in [(0.0, 4), (0.3, 4), (0.8, 8)]:
            dist = EpsilonUniformScheduler(eps).distribution(0, list(range(n)))
            tv = 0.5 * sum(abs(p - 1.0 / n) for p in dist.values())
            assert tv == pytest.approx(eps * (1 - 1.0 / n))

    def test_threshold(self):
        assert EpsilonUniformScheduler(0.25).threshold(4) == pytest.approx(
            0.75 / 4
        )

    def test_favored_crash_falls_back_pid_stably(self):
        sched = EpsilonUniformScheduler(0.5, favored=1)
        # favored=1 crashed: the point mass moves to the smallest active
        # pid — a pid, not an index into the shrinking active list.
        dist = sched.distribution(0, [0, 2, 3])
        assert dist[0] == pytest.approx(0.5 / 3 + 0.5)
        dist = sched.distribution(0, [2, 3])
        assert dist[2] == pytest.approx(0.5 / 2 + 0.5)

    def test_epsilon_zero_is_uniform(self):
        dist = EpsilonUniformScheduler(0.0).distribution(0, [0, 1, 2])
        assert all(p == pytest.approx(1 / 3) for p in dist.values())


class TestContention:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionScheduler(focus=0.5)

    def test_observe_pending_groups_by_register(self):
        sched = ContentionScheduler(focus=3.0)
        sched.observe_pending({0: "top", 1: "top", 2: "head", 3: None})
        # Only groups of >= 2 contend; None (no pending register) never.
        dist = sched.distribution(0, [0, 1, 2, 3])
        contended = 3.0 / (3.0 + 3.0 + 1.0 + 1.0)
        rest = 1.0 / 8.0
        assert dist[0] == pytest.approx(contended)
        assert dist[1] == pytest.approx(contended)
        assert dist[2] == pytest.approx(rest)
        assert dist[3] == pytest.approx(rest)

    def test_no_contention_is_uniform(self):
        sched = ContentionScheduler(focus=8.0)
        sched.observe_pending({0: "a", 1: "b", 2: None})
        dist = sched.distribution(0, [0, 1, 2])
        assert all(p == pytest.approx(1 / 3) for p in dist.values())

    def test_crashed_contender_never_weighted(self):
        sched = ContentionScheduler(focus=5.0)
        sched.observe_pending({0: "top", 1: "top", 2: "x"})
        # pid 0 crashes: its stale contending membership must not leak
        # into the distribution over the survivors.
        dist = sched.distribution(0, [1, 2])
        assert dist[1] == pytest.approx(5.0 / 6.0)
        assert dist[2] == pytest.approx(1.0 / 6.0)

    def test_threshold_is_worst_case_share(self):
        # Worst case for one pid: everyone else contends.
        sched = ContentionScheduler(focus=4.0)
        n = 5
        sched.observe_pending({pid: "hot" for pid in range(1, n)})
        dist = sched.distribution(0, list(range(n)))
        assert min(dist.values()) == pytest.approx(sched.threshold(n))
        assert dist[0] == pytest.approx(1.0 / (1.0 + 4.0 * (n - 1)))

    def test_snapshot_restore_round_trips_contending_set(self):
        sched = ContentionScheduler(focus=2.0)
        sched.observe_pending({0: "a", 1: "a"})
        before = sched.distribution(0, [0, 1, 2])
        snapshot = sched.state_snapshot()
        sched.observe_pending({1: "b", 2: "b"})
        assert sched.distribution(0, [0, 1, 2]) != before
        sched.state_restore(snapshot)
        assert sched.distribution(0, [0, 1, 2]) == before


class TestThresholdLengthChecks:
    def test_skewed_threshold_rejects_mismatched_n(self):
        sched = SkewedStochasticScheduler([1.0, 2.0, 3.0])
        with pytest.raises(ValueError) as excinfo:
            sched.threshold(2)
        # The error names both lengths instead of silently truncating.
        assert "3 weights" in str(excinfo.value)
        assert "2 processes" in str(excinfo.value)

    def test_lottery_threshold_rejects_mismatched_n(self):
        sched = LotteryScheduler([1, 1])
        with pytest.raises(ValueError) as excinfo:
            sched.threshold(3)
        assert "2 weights" in str(excinfo.value)
        assert "3 processes" in str(excinfo.value)

    def test_matching_n_still_works(self):
        assert SkewedStochasticScheduler([1.0, 3.0]).threshold(2) == 0.25
        assert LotteryScheduler([1, 1, 2]).threshold(3) == 0.25


class TestAdversarialDistribution:
    def test_stateless_strategy_works(self):
        sched = AdversarialScheduler(lambda time, active: active[time % len(active)])
        assert sched.distribution(1, [5, 6]) == {5: 0.0, 6: 1.0}

    def test_stateful_strategy_with_peek_does_not_advance(self):
        sched = AdversarialScheduler.round_robin()
        rng = np.random.default_rng(0)
        first = sched.distribution(0, [0, 1, 2])
        assert first == sched.distribution(0, [0, 1, 2])
        # The select sequence is what a fresh scheduler produces: the
        # distribution queries above advanced nothing.
        picks = [sched.select(t, [0, 1, 2], rng) for t in range(1, 4)]
        assert picks == [0, 1, 2]

    def test_stateful_strategy_without_peek_raises(self):
        class OpaqueRotation:
            def __init__(self):
                self.calls = 0

            def state_snapshot(self):
                return self.calls

            def state_restore(self, snapshot):
                self.calls = snapshot

            def __call__(self, time, active):
                pid = active[self.calls % len(active)]
                self.calls += 1
                return pid

        sched = AdversarialScheduler(OpaqueRotation())
        with pytest.raises(NotImplementedError) as excinfo:
            sched.distribution(0, [0, 1])
        assert "OpaqueRotation" in str(excinfo.value)
        # ...and the refusal must not have advanced the strategy either.
        rng = np.random.default_rng(0)
        assert sched.select(1, [0, 1], rng) == 0


class TestSpoilerCrashRotation:
    def test_victim_present_alternates_two_to_one(self):
        sched = AdversarialScheduler.alternating_spoiler(0)
        rng = np.random.default_rng(0)
        picks = [sched.select(t, [0, 1, 2, 3], rng) for t in range(1, 10)]
        assert picks == [0, 0, 1, 0, 0, 2, 0, 0, 3]

    def test_victim_crashed_rotates_over_survivors(self):
        sched = AdversarialScheduler.alternating_spoiler(0)
        rng = np.random.default_rng(0)
        # Victim 0 crashed from the start: every slot goes to a
        # pid-stable rotation over the others — not others[0] pinned.
        picks = [sched.select(t, [1, 2, 3], rng) for t in range(1, 7)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_rotation_survives_mid_run_crashes_pid_stably(self):
        sched = AdversarialScheduler.alternating_spoiler(0)
        rng = np.random.default_rng(0)
        for t in range(1, 7):  # spoiler slots at t=3 (pid 1), t=6 (pid 2)
            sched.select(t, [0, 1, 2, 3], rng)
        # Victim crashes: the same rotation resumes after pid 2, so no
        # survivor is skipped or double-scheduled by list reindexing.
        picks = [sched.select(t, [1, 2, 3], rng) for t in range(7, 10)]
        assert picks == [3, 1, 2]
        # A spoiler crash removes exactly its own pid from the cycle.
        picks = [sched.select(t, [1, 3], rng) for t in range(10, 12)]
        assert picks == [3, 1]


class TestMarkovThresholdMonteCarlo:
    def test_threshold_matches_empirical_minimum_frequency(self):
        # The docstring's theta must be the slowed process's share in
        # its own regime — the per-step minimum.  Hold the scheduler in
        # the regime that slows pid 0 and measure pid 0's frequency.
        n, slowdown = 4, 4.0
        sched = MarkovModulatedScheduler(slowdown=slowdown)
        sched.state_restore((0, 10**9))  # regime: pid 0 slowed, pinned
        rng = np.random.default_rng(7)
        draws = 20_000
        active = list(range(n))
        hits = sum(sched.select(t, active, rng) == 0 for t in range(draws))
        freq = hits / draws

        theta = sched.threshold(n)
        assert theta == pytest.approx(1.0 / (slowdown * (n - 1) + 1.0))
        sigma = (theta * (1 - theta) / draws) ** 0.5
        assert abs(freq - theta) < 5 * sigma

        # The formula the docstring used to claim, 1/(n-1+slowdown),
        # is NOT a valid per-step lower bound for n >= 3: the measured
        # minimum frequency sits far below it.
        old_docstring_theta = 1.0 / (n - 1 + slowdown)
        assert freq + 5 * sigma < old_docstring_theta
