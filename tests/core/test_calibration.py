"""Tests for scheduler calibration (repro.core.calibration)."""

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.calibration import (
    calibration_report,
    fit_hardware_like,
    fit_mean_quantum,
    schedule_statistics,
)
from repro.core.scheduler import HardwareLikeScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator


def record(scheduler, n, steps, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=n,
        memory=make_counter_memory(),
        record_schedule=True,
        rng=seed,
    )
    sim.run(steps)
    return sim.recorder.schedule.as_array()


class TestStatistics:
    def test_uniform_statistics(self):
        n = 8
        schedule = record(UniformStochasticScheduler(), n, 100_000)
        stats = schedule_statistics(schedule, n)
        assert stats.self_succession == pytest.approx(1 / n, abs=0.01)
        assert stats.mean_run_length == pytest.approx(n / (n - 1), rel=0.05)
        assert stats.empirical_theta == pytest.approx(1 / n, abs=0.01)

    def test_quantum_raises_run_length(self):
        n = 8
        bursty = schedule_statistics(
            record(HardwareLikeScheduler(mean_quantum=4.0), n, 60_000), n
        )
        uniform = schedule_statistics(
            record(UniformStochasticScheduler(), n, 60_000), n
        )
        assert bursty.mean_run_length > 2 * uniform.mean_run_length
        assert bursty.self_succession > 2 * uniform.self_succession

    def test_short_schedule_rejected(self):
        with pytest.raises(ValueError):
            schedule_statistics(np.array([0]), 2)


class TestFitting:
    @pytest.mark.parametrize("true_quantum", [1.5, 3.0, 6.0])
    def test_roundtrip_recovers_quantum(self, true_quantum):
        n = 16
        schedule = record(
            HardwareLikeScheduler(mean_quantum=true_quantum), n, 120_000
        )
        fitted = fit_mean_quantum(schedule_statistics(schedule, n))
        assert fitted == pytest.approx(true_quantum, rel=0.15)

    def test_uniform_fits_quantum_one(self):
        n = 8
        schedule = record(UniformStochasticScheduler(), n, 60_000)
        fitted = fit_mean_quantum(schedule_statistics(schedule, n))
        assert fitted == pytest.approx(1.0, abs=0.1)

    def test_fit_needs_two_processes(self):
        stats = schedule_statistics(np.array([0, 0, 0]), 1)
        with pytest.raises(ValueError):
            fit_mean_quantum(stats)

    def test_fitted_scheduler_reproduces_statistics(self):
        n = 12
        original_schedule = record(
            HardwareLikeScheduler(mean_quantum=3.0), n, 80_000, seed=1
        )
        original = schedule_statistics(original_schedule, n)
        fitted = fit_hardware_like(original_schedule, n)
        regenerated_schedule = record(fitted, n, 80_000, seed=2)
        regenerated = schedule_statistics(regenerated_schedule, n)
        report = calibration_report(original, regenerated)
        assert report["mean_run_length_error"] < 0.1
        assert report["self_succession_error"] < 0.15
        assert report["share_spread_difference"] < 0.02
