"""Tests for work / total step complexity (repro.core.work)."""

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.parallel import parallel_code
from repro.chains.scu import scu_system_latency_exact
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.core.work import mean_work, measure_work


class TestMeasureWork:
    def test_parallel_code_round_robin_exact(self):
        # q steps per op, round-robin over n processes: everyone finishes
        # their k-th op by step n*q*k exactly.
        q, n, k = 3, 4, 2
        work = measure_work(
            parallel_code(q),
            AdversarialScheduler.round_robin(),
            n,
            operations_each=k,
        )
        assert work == n * q * k

    def test_starvation_adversary_never_finishes(self):
        with pytest.raises(ArithmeticError, match="unfinished"):
            measure_work(
                cas_counter(),
                AdversarialScheduler.starve(victim=0),
                3,
                memory=make_counter_memory(),
                max_steps=5_000,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_work(
                cas_counter(), UniformStochasticScheduler(), 2,
                operations_each=0,
            )


class TestFairnessConsequence:
    def test_work_close_to_individual_latency(self):
        # Lemma 7's fairness: all n processes finish one op each in about
        # n*W*log-ish steps — far below n * (n W), the bound without
        # fairness.  Check the measured work sits in a narrow band above
        # the individual latency n W.
        n = 8
        w = scu_system_latency_exact(n)
        work = mean_work(
            cas_counter,
            UniformStochasticScheduler,
            n,
            memory_builder=make_counter_memory,
            repeats=20,
            seed=1,
        )
        individual = n * w
        assert individual * 0.8 < work < individual * 4
        assert work < n * individual / 2

    def test_work_scales_with_operations(self):
        n = 4
        one = mean_work(
            cas_counter,
            UniformStochasticScheduler,
            n,
            memory_builder=make_counter_memory,
            operations_each=1,
            repeats=10,
            seed=2,
        )
        four = mean_work(
            cas_counter,
            UniformStochasticScheduler,
            n,
            memory_builder=make_counter_memory,
            operations_each=4,
            repeats=10,
            seed=2,
        )
        assert 2 * one < four < 8 * one
