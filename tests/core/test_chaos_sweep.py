"""Chaos suites: sweeps under injected faults and interruption.

The acceptance contract of the resilient sweep layer, as tests:

* under injected worker kill/hang/raise faults, ``parallel_sweep``
  completes and its points are bit-identical to the fault-free serial
  sweep with the same seed;
* a sweep killed mid-run and resumed from its checkpoint reproduces the
  uninterrupted result exactly, re-running only the missing replicates —
  across the serial, batched and ensemble engines;
* a poison task is isolated and named;
* a checkpoint from different sweep parameters is rejected loudly.
"""

import functools

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.checkpoint import CheckpointMismatchError
from repro.core.runner import RetryPolicy, TaskError
from repro.core.sweep import latency_sweep, parallel_sweep
from repro.testing.chaos import ChaosPlan, ChaosPool

SWEEP = dict(steps=8_000, repeats=3, seed=5)
N_VALUES = [2, 4]
FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.1)


@pytest.fixture(scope="module")
def reference():
    """The fault-free serial-process sweep every chaos run must match."""
    return latency_sweep(
        cas_counter, make_counter_memory, N_VALUES, batched=True, **SWEEP
    )


class TestFaultsAreInvisible:
    def test_kill_hang_and_raise_leave_results_bit_identical(
        self, tmp_path, reference
    ):
        # Faults here key the executor's pickle-transport task keys,
        # the (n, replicate) tuples; the shared-memory transport names
        # tasks by row index, and its chaos twin lives in
        # tests/core/test_shm_dispatch.py.
        plan = ChaosPlan(
            state_dir=str(tmp_path),
            faults={(2, 1): "kill", (4, 0): "raise", (4, 2): "hang"},
            hang_seconds=5.0,
        )
        points = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            chunk_size=1,
            dispatch="pickle",
            retry=RetryPolicy(
                max_retries=3, base_delay=0.01, max_delay=0.1, timeout=1.5
            ),
            pool_factory=functools.partial(ChaosPool, plan=plan),
            **SWEEP,
        )
        assert points == reference

    def test_seeded_probability_storm_completes(self, tmp_path, reference):
        # Every task has a coin-flip chance of an injected raise; the
        # sweep must still finish with exact numbers.
        plan = ChaosPlan(
            state_dir=str(tmp_path), probability=0.5, kinds=("raise",), seed=9
        )
        points = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            retry=FAST_RETRY,
            pool_factory=functools.partial(ChaosPool, plan=plan),
            **SWEEP,
        )
        assert points == reference


class TestPoisonIsolation:
    def test_failing_replicate_named_in_error(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path), faults={(4, 1): "raise"}, once=False
        )
        with pytest.raises(TaskError, match=r"\(4, 1\)") as excinfo:
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                max_workers=2,
                dispatch="pickle",
                retry=RetryPolicy(max_retries=1, base_delay=0.01, max_delay=0.02),
                pool_factory=functools.partial(ChaosPool, plan=plan),
                **SWEEP,
            )
        assert excinfo.value.key == (4, 1)


class _Interrupter:
    """An on_progress hook that aborts the sweep after ``after`` tasks."""

    def __init__(self, after):
        self.after = after
        self.calls = 0

    def __call__(self, done, total, key):
        self.calls += 1
        if self.calls >= self.after:
            raise KeyboardInterrupt


class TestCheckpointResume:
    @pytest.mark.parametrize("engine", ["serial", "batched", "ensemble"])
    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path, engine):
        kwargs = dict(steps=6_000, repeats=3, seed=11, engine=engine)
        uninterrupted = latency_sweep(
            cas_counter, make_counter_memory, N_VALUES, **kwargs
        )
        path = tmp_path / f"{engine}.jsonl"
        with pytest.raises(KeyboardInterrupt):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                checkpoint=path,
                on_progress=_Interrupter(after=2),
                **kwargs,
            )
        rerun = []
        resumed = latency_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            checkpoint=path,
            resume=True,
            on_progress=lambda done, total, key: rerun.append(key),
            **kwargs,
        )
        assert resumed == uninterrupted
        # Only the missing replicates were re-run.
        total = len(N_VALUES) * kwargs["repeats"]
        assert len(rerun) == total - 2

    def test_parallel_resume_of_killed_parallel_sweep(self, tmp_path, reference):
        # A mid-run abort (poison task) leaves a valid checkpoint; a
        # clean resume re-runs only what is missing and matches the
        # fault-free reference exactly.
        path = tmp_path / "parallel.jsonl"
        plan = ChaosPlan(
            state_dir=str(tmp_path), faults={(4, 2): "raise"}, once=False
        )
        with pytest.raises(TaskError):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                max_workers=2,
                chunk_size=1,
                dispatch="pickle",
                checkpoint=path,
                retry=RetryPolicy(max_retries=1, base_delay=0.01, max_delay=0.02),
                pool_factory=functools.partial(ChaosPool, plan=plan),
                **SWEEP,
            )
        from repro.core.checkpoint import SweepCheckpoint

        recorded = set(SweepCheckpoint.load_completed(path))
        rerun = []
        resumed = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            checkpoint=path,
            resume=True,
            on_progress=lambda done, total, key: rerun.append(key),
            **SWEEP,
        )
        assert resumed == reference
        all_keys = {(n, r) for n in N_VALUES for r in range(SWEEP["repeats"])}
        assert set(rerun) == all_keys - recorded
        assert (4, 2) in rerun

    def test_serial_checkpoint_resumable_by_parallel_sweep(
        self, tmp_path, reference
    ):
        # Engines agree bit-for-bit, so a batched latency_sweep
        # checkpoint is a valid warm start for parallel_sweep.
        path = tmp_path / "handoff.jsonl"
        with pytest.raises(KeyboardInterrupt):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                batched=True,
                checkpoint=path,
                on_progress=_Interrupter(after=3),
                **SWEEP,
            )
        resumed = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            checkpoint=path,
            resume=True,
            **SWEEP,
        )
        assert resumed == reference

    def test_mismatched_resume_rejected(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            checkpoint=path,
            **SWEEP,
        )
        different = dict(SWEEP, seed=SWEEP["seed"] + 1)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                max_workers=2,
                checkpoint=path,
                resume=True,
                **different,
            )

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="resume"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                resume=True,
                **SWEEP,
            )

    def test_completed_checkpoint_resumes_without_recomputing(
        self, tmp_path, reference
    ):
        path = tmp_path / "full.jsonl"
        parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            checkpoint=path,
            **SWEEP,
        )
        rerun = []
        resumed = parallel_sweep(
            cas_counter,
            make_counter_memory,
            N_VALUES,
            max_workers=2,
            checkpoint=path,
            resume=True,
            on_progress=lambda done, total, key: rerun.append(key),
            **SWEEP,
        )
        assert resumed == reference
        assert rerun == []


class TestBurnInValidation:
    def test_latency_sweep_rejects_burn_in_at_steps(self):
        with pytest.raises(ValueError, match="burn_in"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                steps=1_000,
                repeats=2,
                burn_in=1_000,
            )

    def test_parallel_sweep_rejects_burn_in_at_steps(self):
        with pytest.raises(ValueError, match="burn_in"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                steps=1_000,
                repeats=2,
                burn_in=2_000,
            )

    def test_negative_burn_in_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                N_VALUES,
                steps=1_000,
                repeats=2,
                burn_in=-1,
            )
