"""Tests for repro.stats.estimators."""

import numpy as np
import pytest

from repro.stats.estimators import (
    batch_means,
    fit_power_law,
    fit_sqrt_scaling,
    mean_confidence_interval,
)


class TestConfidenceInterval:
    def test_covers_true_mean(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(5.0, 2.0, size=50)
            if mean_confidence_interval(sample, 0.95).contains(5.0):
                hits += 1
        assert hits / 200 > 0.9

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        small = mean_confidence_interval(rng.normal(size=20))
        large = mean_confidence_interval(rng.normal(size=2_000))
        assert large.half_width < small.half_width

    def test_bounds(self):
        est = mean_confidence_interval([1.0, 2.0, 3.0])
        assert est.low < est.mean < est.high

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])


class TestBatchMeans:
    def test_shape(self):
        out = batch_means(np.arange(100.0), batches=10)
        assert out.shape == (10,)

    def test_values(self):
        out = batch_means(np.array([1.0, 1.0, 3.0, 3.0]), batches=2)
        assert out.tolist() == [1.0, 3.0]

    def test_truncates_remainder(self):
        out = batch_means(np.arange(11.0), batches=2)
        assert out.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], batches=1)
        with pytest.raises(ValueError):
            batch_means([1.0], batches=2)


class TestAutocorrelation:
    def test_white_noise_near_zero(self):
        from repro.stats.estimators import autocorrelation

        rng = np.random.default_rng(3)
        rho = autocorrelation(rng.normal(size=20_000), max_lag=5)
        assert rho[0] == pytest.approx(1.0)
        assert np.all(np.abs(rho[1:]) < 0.05)

    def test_ar1_matches_theory(self):
        from repro.stats.estimators import autocorrelation

        rng = np.random.default_rng(4)
        phi = 0.7
        x = np.zeros(40_000)
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + rng.normal()
        rho = autocorrelation(x, max_lag=3)
        for lag in (1, 2, 3):
            assert rho[lag] == pytest.approx(phi**lag, abs=0.05)

    def test_validation(self):
        from repro.stats.estimators import autocorrelation

        with pytest.raises(ValueError):
            autocorrelation([1.0], max_lag=0)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], max_lag=5)
        with pytest.raises(ValueError, match="constant"):
            autocorrelation([2.0, 2.0, 2.0], max_lag=1)


class TestEffectiveSampleSize:
    def test_independent_series_full_size(self):
        from repro.stats.estimators import effective_sample_size

        rng = np.random.default_rng(5)
        n = 10_000
        ess = effective_sample_size(rng.normal(size=n))
        assert ess == pytest.approx(n, rel=0.15)

    def test_correlated_series_shrinks(self):
        from repro.stats.estimators import effective_sample_size

        rng = np.random.default_rng(6)
        phi = 0.9
        x = np.zeros(20_000)
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + rng.normal()
        ess = effective_sample_size(x)
        # Theory: ESS ~ n (1 - phi) / (1 + phi) ~ n / 19.
        assert ess < x.size / 8

    def test_simulator_gaps_have_finite_ess(self):
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator
        from repro.stats.estimators import effective_sample_size

        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=8,
            memory=make_counter_memory(),
            rng=0,
        )
        sim.run(60_000)
        gaps = np.diff(np.asarray(sim.recorder.completion_times))
        ess = effective_sample_size(gaps)
        assert 0 < ess <= gaps.size


class TestFits:
    def test_power_law_recovers_exponent(self):
        xs = np.array([4, 16, 64, 256], dtype=float)
        ys = 3.0 * xs**0.5
        exponent, coeff = fit_power_law(xs, ys)
        assert exponent == pytest.approx(0.5)
        assert coeff == pytest.approx(3.0)

    def test_power_law_with_noise(self):
        rng = np.random.default_rng(2)
        xs = np.geomspace(10, 10_000, 20)
        ys = 2.0 * xs**0.75 * np.exp(rng.normal(0, 0.02, size=20))
        exponent, _ = fit_power_law(xs, ys)
        assert exponent == pytest.approx(0.75, abs=0.05)

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -1.0], [2.0, 2.0])

    def test_sqrt_fit(self):
        xs = np.array([1, 4, 9], dtype=float)
        ys = 5.0 * np.sqrt(xs)
        assert fit_sqrt_scaling(xs, ys) == pytest.approx(5.0)

    def test_sqrt_fit_validation(self):
        with pytest.raises(ValueError):
            fit_sqrt_scaling([], [])
