"""Tests for repro.stats.compare."""

import numpy as np
import pytest

from repro.stats.compare import (
    chi_square_uniformity,
    empirical_threshold,
    step_share_spread,
    total_variation,
)


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = np.array([0.25, 0.75])
        assert total_variation(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_symmetry(self):
        p = np.array([0.2, 0.3, 0.5])
        q = np.array([0.5, 0.25, 0.25])
        assert total_variation(p, q) == total_variation(q, p)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            total_variation(np.array([1.0]), np.array([0.5, 0.5]))

    def test_non_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            total_variation(np.array([0.6, 0.6]), np.array([0.5, 0.5]))


class TestChiSquare:
    def test_uniform_counts_high_p(self):
        rng = np.random.default_rng(0)
        counts = np.bincount(rng.integers(8, size=80_000), minlength=8)
        _, p_value = chi_square_uniformity(counts)
        assert p_value > 0.01

    def test_skewed_counts_low_p(self):
        counts = np.array([1000, 100, 100, 100])
        _, p_value = chi_square_uniformity(counts)
        assert p_value < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniformity(np.array([5.0]))
        with pytest.raises(ValueError):
            chi_square_uniformity(np.zeros(3))


class TestScheduleStatistics:
    def test_empirical_threshold_uniform(self):
        rng = np.random.default_rng(1)
        schedule = rng.integers(4, size=100_000)
        theta = empirical_threshold(schedule, 4)
        assert theta == pytest.approx(0.25, abs=0.01)

    def test_empirical_threshold_starvation(self):
        schedule = np.zeros(1000, dtype=int)
        assert empirical_threshold(schedule, 2) == 0.0

    def test_step_share_spread(self):
        schedule = np.array([0, 0, 0, 1])
        assert step_share_spread(schedule, 2) == pytest.approx(0.5)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            empirical_threshold(np.array([], dtype=int), 2)
        with pytest.raises(ValueError):
            step_share_spread(np.array([], dtype=int), 2)
