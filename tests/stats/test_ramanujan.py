"""Tests for repro.stats.ramanujan."""

import numpy as np
import pytest

from repro.stats.ramanujan import (
    birthday_expected_collision,
    counter_return_times,
    ramanujan_q,
    ramanujan_q_asymptotic,
)


class TestRamanujanQ:
    def test_small_values_by_hand(self):
        # Q(1) = 1 (single term k=1).
        assert ramanujan_q(1) == pytest.approx(1.0)
        # Q(2) = 1 + 2!/2^2 = 1.5.
        assert ramanujan_q(2) == pytest.approx(1.5)
        # Q(3) = 1 + 2/3 + 2/9 = 17/9.
        assert ramanujan_q(3) == pytest.approx(17 / 9)

    def test_monotone_increasing(self):
        values = [ramanujan_q(n) for n in range(1, 60)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ramanujan_q(0)


class TestAsymptotics:
    def test_leading_term(self):
        n = 10_000
        assert ramanujan_q(n) / np.sqrt(np.pi * n / 2) == pytest.approx(
            1.0, abs=0.01
        )

    def test_expansion_orders_improve(self):
        n = 200
        exact = ramanujan_q(n)
        errors = [
            abs(ramanujan_q_asymptotic(n, order=k) - exact) for k in range(4)
        ]
        assert errors[1] < errors[0]
        assert errors[3] < errors[1]

    def test_high_order_is_tight(self):
        for n in (50, 500, 5_000):
            assert ramanujan_q_asymptotic(n, order=3) == pytest.approx(
                ramanujan_q(n), rel=1e-3
            )

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ramanujan_q_asymptotic(10, order=4)
        with pytest.raises(ValueError):
            ramanujan_q_asymptotic(0)


class TestZRecurrence:
    def test_base_case(self):
        assert counter_return_times(1).tolist() == [1.0]

    def test_recurrence_step(self):
        z = counter_return_times(5)
        for i in range(1, 5):
            assert z[i] == pytest.approx(1 + (i / 5) * z[i - 1])

    def test_z_equals_q_identity(self):
        # The paper's remark is exact: Z(n-1) = Q(n).
        for n in (1, 2, 7, 33, 200):
            assert counter_return_times(n)[-1] == pytest.approx(
                ramanujan_q(n), rel=1e-12
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            counter_return_times(0)


class TestBirthday:
    def test_expected_collision_monte_carlo(self):
        rng = np.random.default_rng(0)
        n = 64
        total = 0
        trials = 5_000
        for _ in range(trials):
            seen = set()
            throws = 0
            while True:
                throws += 1
                x = int(rng.integers(n))
                if x in seen:
                    break
                seen.add(x)
            total += throws
        assert total / trials == pytest.approx(
            birthday_expected_collision(n), rel=0.03
        )
