"""Integration tests for Theorem 4: SCU(q, s) latencies under the uniform
stochastic scheduler — simulation vs exact chains vs the O(q + s sqrt(n))
prediction."""

import numpy as np
import pytest

from repro.core.scu import SCU
from repro.stats.estimators import fit_power_law


class TestSimulationMatchesExactChains:
    @pytest.mark.parametrize("q,s,n", [(0, 1, 4), (1, 1, 4), (0, 2, 4), (2, 2, 4)])
    def test_system_latency(self, q, s, n):
        spec = SCU(q, s)
        measured = spec.measure(n, 200_000, rng=q * 100 + s * 10 + n)
        assert measured.system_latency == pytest.approx(
            spec.exact_system_latency(n), rel=0.05
        )

    def test_individual_latency_fairness(self):
        spec = SCU(1, 2)
        n = 5
        measured = spec.measure(n, 400_000, rng=0)
        assert measured.fairness_ratio == pytest.approx(1.0, abs=0.15)
        # All processes see (roughly) the same individual latency.
        lats = list(measured.individual.values())
        assert max(lats) / min(lats) < 1.3


class TestTheorem4Shape:
    def test_sqrt_n_exponent_for_scan_validate(self):
        # System latency of SCU(0,1) grows with exponent ~0.5 in n.
        ns = [16, 36, 64, 121, 225]
        spec = SCU(0, 1)
        latencies = [
            spec.measure(n, 120_000, rng=n).system_latency for n in ns
        ]
        exponent, _ = fit_power_law(ns, latencies)
        assert 0.35 < exponent < 0.62

    def test_upper_bound_holds(self):
        # Measured latency stays below q + alpha * s * sqrt(n) with the
        # paper's alpha >= 4.
        for q, s, n in [(0, 1, 25), (2, 1, 49), (0, 3, 36)]:
            spec = SCU(q, s)
            measured = spec.measure(n, 150_000, rng=7)
            assert measured.system_latency <= spec.predicted_system_latency(n)

    def test_latency_additive_in_q(self):
        # Increasing the preamble by dq raises the system latency by at
        # most dq (preamble work overlaps across processes, so the exact
        # increase is sub-additive — the O(q + s sqrt(n)) bound's q term).
        n = 9
        w1 = SCU(1, 1).measure(n, 200_000, rng=1).system_latency
        w5 = SCU(5, 1).measure(n, 200_000, rng=1).system_latency
        assert 0.3 * 4 < w5 - w1 < 1.1 * 4
        # And the measured increase matches the exact chains.
        exact_diff = SCU(5, 1).exact_system_latency(n) - SCU(
            1, 1
        ).exact_system_latency(n)
        assert w5 - w1 == pytest.approx(exact_diff, abs=0.4)

    def test_latency_scales_in_s(self):
        # Corollary 1: system latency is O(s sqrt(n)) — growing s by 3x
        # grows the latency super-linearly in our measurement (longer
        # scans waste more work per conflict) but stays under the bound.
        n = 49
        w1 = SCU(0, 1).measure(n, 200_000, rng=2).system_latency
        w3 = SCU(0, 3).measure(n, 300_000, rng=2).system_latency
        assert w3 > 2.0 * w1
        assert w3 <= SCU(0, 3).predicted_system_latency(n, alpha=4.0)

    def test_far_below_worst_case(self):
        # The headline: stochastic latency ~ sqrt(n), worst case ~ n.
        n = 100
        spec = SCU(0, 1)
        measured = spec.measure(n, 200_000, rng=3)
        assert measured.system_latency < 0.5 * spec.worst_case_system_latency(n)
