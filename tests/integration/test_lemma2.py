"""Integration tests for Lemma 2: an unbounded lock-free algorithm is not
wait-free with high probability, even under the uniform stochastic
scheduler — boundedness in Theorem 3 is necessary."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.unbounded import make_unbounded_memory, unbounded_lockfree
from repro.core.progress import progress_report
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator


def run_unbounded(n, steps, seed):
    sim = Simulator(
        unbounded_lockfree(n),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=make_unbounded_memory(),
        record_history=True,
        rng=seed,
    )
    result = sim.run(steps)
    return result, progress_report(
        result.history, result.steps_executed, starvation_window=steps // 2
    )


class TestLemma2:
    def test_monopoly_frequency_matches_bound(self):
        # Across seeds, the fraction of runs where a single process takes
        # all completions should be at least 1 - 2e^{-n} (here n = 8:
        # bound ~ 0.9993; with 20 trials we require all of them).
        n = 8
        monopolies = 0
        trials = 20
        for seed in range(trials):
            result, _ = run_unbounded(n, 30_000, seed)
            winners = [
                pid for pid in range(n) if result.completions_of(pid) > 0
            ]
            if len(winners) == 1:
                monopolies += 1
        assert monopolies == trials

    def test_not_wait_free_despite_stochastic_scheduler(self):
        result, report = run_unbounded(8, 50_000, seed=100)
        assert report.made_minimal_progress
        assert not report.made_maximal_progress
        assert len(report.starved) >= 6

    def test_contrast_with_bounded_algorithm(self):
        # The bounded CAS counter, under the *same* scheduler, starves
        # nobody — the pair of runs is Lemma 2 vs Theorem 3 side by side.
        n = 8
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_counter_memory(),
            record_history=True,
            rng=100,
        )
        result = sim.run(50_000)
        report = progress_report(
            result.history, result.steps_executed, starvation_window=25_000
        )
        assert report.made_maximal_progress

    def test_backoff_cap_restores_wait_freedom(self):
        # Capping the backoff makes minimal progress bounded again, and
        # maximal progress returns (everyone completes).
        n = 6
        sim = Simulator(
            unbounded_lockfree(n, backoff_cap=3),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_unbounded_memory(),
            rng=3,
        )
        result = sim.run(200_000)
        for pid in range(n):
            assert result.completions_of(pid) > 0
