"""Smoke tests: every example script runs to completion and prints its
takeaway.  Examples are part of the public deliverable; breaking one is
a regression."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["8"], "Takeaway"),
    ("min_to_max_progress.py", [], "monopoly probability"),
    ("custom_object.py", [], "linearizable: True"),
    ("stack_queue_progress.py", [], "starved pids"),
    ("counter_completion_rate.py", [], "worst 1/n"),
    ("scheduler_fairness.py", [], "theta-hat"),
    ("skewed_scheduler_analysis.py", [], "slow/fast ratio"),
    ("progress_zoo.py", [], "classified as"),
]


@pytest.mark.parametrize("script,args,needle", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout
