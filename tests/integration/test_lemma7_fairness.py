"""Integration tests for Lemma 7 / Lemma 14: individual latency equals
n times system latency — every process gets an equal share."""

import numpy as np
import pytest

from repro.algorithms.augmented_counter import (
    augmented_cas_counter,
    make_augmented_counter_memory,
)
from repro.chains.counter import (
    counter_individual_latency_exact,
    counter_system_latency_exact,
)
from repro.chains.scu import (
    scu_individual_latency_exact,
    scu_system_latency_exact,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler


class TestExactFairness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_scu_wi_equals_n_w(self, n):
        assert scu_individual_latency_exact(n) == pytest.approx(
            n * scu_system_latency_exact(n), rel=1e-9
        )

    @pytest.mark.parametrize("n", [2, 4, 8, 12])
    def test_counter_wi_equals_n_w(self, n):
        assert counter_individual_latency_exact(n) == pytest.approx(
            n * counter_system_latency_exact(n), rel=1e-9
        )

    def test_every_pid_has_same_individual_latency(self):
        n = 4
        lats = [scu_individual_latency_exact(n, pid) for pid in range(n)]
        assert np.allclose(lats, lats[0])


class TestSimulatedFairness:
    def test_scu_completion_counts_equal(self):
        from repro.core.scu import SCU

        n = 8
        measured = SCU(0, 1).measure(n, 400_000, rng=0)
        counts = np.array(
            [1.0 / lat for lat in measured.individual.values()]
        )
        # Per-process completion rates within 10% of each other.
        assert counts.max() / counts.min() < 1.1

    def test_augmented_counter_fairness(self):
        n = 10
        m = measure_latencies(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=400_000,
            memory=make_augmented_counter_memory(),
            rng=1,
        )
        assert m.fairness_ratio == pytest.approx(1.0, abs=0.1)

    def test_fairness_breaks_under_skew(self):
        # Control experiment: a skewed (but stochastic) scheduler breaks
        # the W_i = n W identity — fairness is a property of the
        # *uniform* scheduler, not of the algorithm alone.
        from repro.core.scheduler import SkewedStochasticScheduler
        from repro.core.scu import SCU

        n = 4
        skewed = SkewedStochasticScheduler([1.0, 1.0, 1.0, 8.0])
        measured = SCU(0, 1).measure(
            n, 400_000, scheduler=skewed, rng=2
        )
        lats = measured.individual
        assert lats[3] < 0.6 * max(lats[pid] for pid in range(3))
