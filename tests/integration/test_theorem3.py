"""Integration tests for Theorem 3: bounded minimal progress + stochastic
scheduler => maximal progress (with probability 1)."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.progress import progress_report
from repro.core.scheduler import (
    AdversarialScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.sim.executor import Simulator


def run_counter(scheduler, n, steps, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=n,
        memory=make_counter_memory(),
        record_history=True,
        rng=seed,
    )
    result = sim.run(steps)
    return result, progress_report(
        result.history, result.steps_executed, starvation_window=steps // 2
    )


class TestStochasticSchedulersGiveMaximalProgress:
    def test_uniform_scheduler_everyone_completes(self):
        result, report = run_counter(UniformStochasticScheduler(), 8, 50_000)
        assert report.made_minimal_progress
        assert report.made_maximal_progress
        for pid in range(8):
            assert result.completions_of(pid) > 0

    def test_heavily_skewed_but_stochastic_still_completes_all(self):
        # theta is tiny but positive: Theorem 3 still applies.
        weights = [1.0] * 7 + [0.02]
        result, report = run_counter(
            SkewedStochasticScheduler(weights), 8, 300_000, seed=1
        )
        assert report.made_maximal_progress
        assert result.completions_of(7) > 0

    def test_empirical_maximal_bound_far_below_theorem_bound(self):
        # Theorem 3's bound (1/theta)^T is loose; the observed bound must
        # be below it (and in practice far below).
        from repro.core.analysis import min_to_max_progress_bound

        n = 4
        result, report = run_counter(UniformStochasticScheduler(), n, 50_000)
        # Bounded lock-freedom of the CAS counter: within T = 2n steps by
        # all processes, someone completes.
        theorem_bound = min_to_max_progress_bound(1.0 / n, 2 * n)
        assert report.maximal_bound < theorem_bound

    def test_crashes_do_not_block_survivors(self):
        # Maximal progress is only promised to *active* processes; the
        # survivors keep completing after others crash.
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_counter_memory(),
            crash_times={0: 1_000, 1: 1_000},
            record_history=True,
            rng=2,
        )
        result = sim.run(30_000)
        assert result.completions_of(2) > 100
        assert result.completions_of(3) > 100


class TestAdversaryBreaksMaximalProgress:
    def test_starvation_adversary_starves_victim(self):
        # theta = 0: Theorem 3's hypothesis fails and so does its
        # conclusion — the witness that stochasticity is doing the work.
        result, report = run_counter(
            AdversarialScheduler.starve(victim=0), 4, 50_000
        )
        assert report.made_minimal_progress
        assert not report.made_maximal_progress
        assert 0 in report.starved
        assert result.completions_of(0) == 0

    def test_victim_maximal_bound_grows_with_run_length(self):
        bounds = []
        for steps in (10_000, 40_000):
            _, report = run_counter(
                AdversarialScheduler.starve(victim=0), 4, steps
            )
            bounds.append(report.maximal_bound)
        assert bounds[1] > 3 * bounds[0]
