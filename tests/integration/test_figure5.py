"""Integration test for Figure 5: completion rate of the CAS counter vs
the Theta(1/sqrt(n)) prediction and the 1/n worst case."""

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.analysis import (
    completion_rate_prediction,
    worst_case_completion_rate,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.stats.estimators import fit_power_law


def measured_rates(ns, steps=100_000, seed=0):
    rates = []
    for n in ns:
        m = measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=steps,
            memory=make_counter_memory(),
            rng=seed + n,
        )
        rates.append(m.completion_rate)
    return np.array(rates)


class TestFigure5:
    def test_prediction_tracks_measurement(self):
        # The scaled 1/sqrt(n) prediction stays within ~25% of the
        # measured rate across the sweep (the paper's figure shows the
        # same qualitative agreement).
        ns = [2, 4, 8, 16, 32]
        rates = measured_rates(ns)
        predicted = completion_rate_prediction(ns, measured_first=rates[0])
        assert np.all(np.abs(predicted - rates) / rates < 0.25)

    def test_rate_well_above_worst_case(self):
        # The gap over the 1/n worst case widens like sqrt(n): at n = 16
        # the measured rate is already ~2x the worst case, ~3x at n = 32.
        ns = [16, 32, 64]
        rates = measured_rates(ns, seed=100)
        worst = worst_case_completion_rate(ns)
        assert np.all(rates > 1.8 * worst)
        gaps = rates / worst
        assert gaps[-1] > gaps[0]  # the advantage grows with n

    def test_scaling_exponent_near_minus_half(self):
        ns = [4, 9, 16, 36, 64, 121]
        rates = measured_rates(ns, seed=7)
        exponent, _ = fit_power_law(ns, rates)
        assert -0.62 < exponent < -0.38

    def test_exact_chain_rate_matches_measured(self):
        # The model's own exact answer (inverse system latency from the
        # system chain) is what the "prediction" curve approximates.
        from repro.chains.scu import scu_system_latency_exact

        n = 16
        rate = measured_rates([n], steps=200_000, seed=3)[0]
        assert rate == pytest.approx(1.0 / scu_system_latency_exact(n), rel=0.05)
