"""Integration tests for Corollary 2: with only k correct processes the
latencies are governed by k, not n — and for Definition 1's crash
containment in the executor."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import system_latency
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator


def crashy_run(n, k, steps, seed=0):
    """Run the CAS counter with n processes, n - k of which crash early."""
    crash_times = {pid: 1_000 for pid in range(k, n)}
    sim = Simulator(
        cas_counter(),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=make_counter_memory(),
        crash_times=crash_times,
        rng=seed,
    )
    return sim.run(steps)


class TestCorollary2:
    @pytest.mark.parametrize("n,k", [(16, 4), (16, 8), (32, 8)])
    def test_latency_governed_by_survivors(self, n, k):
        # After the crashes, the stationary latency equals the k-process
        # exact value (burn-in excludes the pre-crash transient).
        result = crashy_run(n, k, 300_000)
        w = system_latency(result.recorder, burn_in=30_000)
        assert w == pytest.approx(scu_system_latency_exact(k), rel=0.06)

    def test_smaller_k_means_faster_system(self):
        w4 = system_latency(
            crashy_run(16, 4, 200_000, seed=1).recorder, burn_in=20_000
        )
        w16 = system_latency(
            crashy_run(16, 16, 200_000, seed=1).recorder, burn_in=20_000
        )
        assert w4 < w16

    def test_crashed_processes_never_complete_after_crash(self):
        result = crashy_run(8, 4, 100_000)
        recorder = result.recorder
        for pid in range(4, 8):
            times = recorder.completion_times_of(pid)
            assert all(t <= 1_000 for t in times)

    def test_survivors_share_the_work(self):
        result = crashy_run(12, 3, 200_000, seed=2)
        survivor_counts = [result.completions_of(pid) for pid in range(3)]
        assert min(survivor_counts) > 0.8 * max(survivor_counts)
