"""Integration tests for Figures 3-4: the hardware-like scheduler's
long-run statistics match the uniform stochastic model's."""

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.scheduler import HardwareLikeScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.stats.compare import empirical_threshold, total_variation


def record_schedule(scheduler, n, steps, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=n,
        memory=make_counter_memory(),
        record_schedule=True,
        rng=seed,
    )
    sim.run(steps)
    return sim.recorder.schedule


class TestFigure3LongRunFairness:
    def test_hardware_like_shares_near_uniform(self):
        n = 16
        trace = record_schedule(HardwareLikeScheduler(), n, 200_000)
        shares = trace.step_shares()
        assert total_variation(shares, np.full(n, 1 / n)) < 0.03

    def test_uniform_scheduler_shares_uniform(self):
        n = 16
        trace = record_schedule(UniformStochasticScheduler(), n, 200_000)
        assert total_variation(trace.step_shares(), np.full(n, 1 / n)) < 0.01

    def test_empirical_theta_positive(self):
        n = 16
        trace = record_schedule(HardwareLikeScheduler(), n, 200_000, seed=1)
        theta = empirical_threshold(trace.as_array(), n)
        assert theta > 0.5 / n  # weak fairness, empirically


class TestFigure4LocalStatistics:
    def test_hardware_like_successor_distribution_close_to_uniform(self):
        # Figure 4: after a step of p1, who steps next?  The hardware-like
        # scheduler self-selects more often (quantum runs), exactly like
        # the paper's recordings where "a process is less likely to be
        # scheduled twice in succession" only under the timer method; we
        # check the distribution over the *other* processes is flat.
        n = 16
        trace = record_schedule(HardwareLikeScheduler(), n, 400_000, seed=2)
        succ = trace.successor_shares(1)
        others = np.delete(succ, 1)
        others = others / others.sum()
        assert total_variation(others, np.full(n - 1, 1 / (n - 1))) < 0.05

    def test_uniform_scheduler_successors_uniform(self):
        n = 8
        trace = record_schedule(UniformStochasticScheduler(), n, 300_000, seed=3)
        succ = trace.successor_shares(0)
        assert total_variation(succ, np.full(n, 1 / n)) < 0.02

    def test_uniformly_isolating_in_practice(self):
        # Under the uniform scheduler every process eventually gets long
        # solo runs (the mechanism behind Theorem 3).
        n = 4
        trace = record_schedule(UniformStochasticScheduler(), n, 200_000, seed=4)
        for pid in range(n):
            assert trace.longest_consecutive_run(pid) >= 4
