"""Tests for lease bookkeeping (repro.service.leases)."""

import os

import pytest

from repro.service.leases import (
    Lease,
    LeaseTable,
    make_owner,
    owner_alive,
    owner_pid,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, by):
        self.now += by


class TestOwners:
    def test_make_owner_encodes_this_pid(self):
        assert make_owner("w0") == f"{os.getpid()}:w0"

    def test_owner_pid_roundtrip(self):
        assert owner_pid(make_owner("w1")) == os.getpid()

    def test_owner_pid_unparseable_is_none(self):
        assert owner_pid("not-a-pid:w") is None

    def test_owner_alive_for_this_process(self):
        assert owner_alive(make_owner("w0")) is True

    def test_owner_alive_false_for_dead_pid(self):
        # Fork a child that exits immediately; its PID is then dead
        # (reaped), so the probe must say so.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert owner_alive(f"{pid}:ghost") is False

    def test_unparseable_owner_conservatively_alive(self):
        assert owner_alive("mystery") is True


class TestLeaseTable:
    def test_grant_renew_release(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        lease = table.grant("job", "1:w", 10.0)
        assert lease.expires_at == 10.0
        clock.advance(5)
        renewed = table.renew("job", "1:w")
        assert renewed.expires_at == 15.0
        assert table.release("job").owner == "1:w"
        assert "job" not in table

    def test_double_grant_rejected(self):
        table = LeaseTable(clock=FakeClock())
        table.grant("job", "1:a", 10.0)
        with pytest.raises(ValueError, match="already leased by 1:a"):
            table.grant("job", "2:b", 10.0)

    def test_renew_wrong_owner_rejected(self):
        table = LeaseTable(clock=FakeClock())
        table.grant("job", "1:a", 10.0)
        with pytest.raises(ValueError, match="held by 1:a, not 2:b"):
            table.renew("job", "2:b")

    def test_renew_unleased_rejected(self):
        table = LeaseTable(clock=FakeClock())
        with pytest.raises(ValueError, match="no lease"):
            table.renew("job", "1:a")

    def test_release_is_idempotent(self):
        table = LeaseTable(clock=FakeClock())
        assert table.release("never-granted") is None

    def test_nonpositive_ttl_rejected(self):
        table = LeaseTable(clock=FakeClock())
        with pytest.raises(ValueError, match="ttl must be positive"):
            table.grant("job", "1:a", 0.0)

    def test_expiry_is_clock_driven(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        owner = make_owner("w")  # live PID: only TTL can expire it
        table.grant("job", owner, 10.0)
        assert table.expired() == {}
        clock.advance(10.0)
        assert list(table.expired()) == ["job"]

    def test_dead_owner_expires_immediately(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        table.grant("job", f"{pid}:w", 1000.0)
        assert list(table.expired()) == ["job"]
        assert table.expired(check_owner=False) == {}

    def test_renewed_lease_outlives_original_ttl(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        owner = make_owner("w")
        table.grant("job", owner, 10.0)
        clock.advance(8)
        table.renew("job", owner)
        clock.advance(8)  # t=16 < 8+10
        assert table.expired() == {}

    def test_lease_renewed_is_pure(self):
        lease = Lease("j", "1:w", 0.0, 10.0, 10.0)
        assert lease.renewed(50.0).expires_at == 60.0
        assert lease.expires_at == 10.0
