"""Tests for the crash-safe job ledger (repro.service.ledger)."""

import json
import os

import pytest

from repro.core.checkpoint import CheckpointError
from repro.service.ledger import (
    LEDGER_SCHEMA_VERSION,
    JobLedger,
    TERMINAL_STATES,
)

SPEC = {"workload": "cas-counter", "n_values": [2], "steps": 100, "repeats": 2}


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        self.now += 1.0
        return self.now


def make_ledger(tmp_path, **kwargs):
    return JobLedger(tmp_path / "ledger.jsonl", **kwargs)


class TestJournal:
    def test_fresh_ledger_writes_header(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            pass
        first = json.loads(
            (tmp_path / "ledger.jsonl").read_text().splitlines()[0]
        )
        assert first == {"kind": "header", "schema": LEDGER_SCHEMA_VERSION}

    def test_events_roundtrip(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append("leased", "j1", owner="1:w", attempt=1, expires=9.0)
        with make_ledger(tmp_path) as ledger:
            events = ledger.events()
        assert [e["event"] for e in events] == ["submitted", "leased"]

    def test_unknown_event_rejected_on_append(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            with pytest.raises(ValueError, match="unknown ledger event"):
                ledger.append("exploded", "j1")

    def test_schema_mismatch_is_loud(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"kind": "header", "schema": 999}) + "\n")
        with pytest.raises(CheckpointError, match="schema"):
            JobLedger(path)

    def test_torn_tail_repaired_on_reopen(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
        path = tmp_path / "ledger.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"kind": "event", "event": "leas')  # torn
        with make_ledger(tmp_path) as ledger:
            jobs = ledger.replay()
        assert jobs["j1"].state == "queued"

    def test_second_writer_fails_loudly_with_pid(self, tmp_path):
        ledger = make_ledger(tmp_path)
        try:
            with pytest.raises(CheckpointError, match=str(os.getpid())):
                make_ledger(tmp_path)
        finally:
            ledger.close()

    def test_lock_released_on_close(self, tmp_path):
        make_ledger(tmp_path).close()
        make_ledger(tmp_path).close()
        assert not (tmp_path / "ledger.jsonl.lock").exists()

    def test_read_events_takes_no_lock(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            events = JobLedger.read_events(ledger.path)
        assert [e["event"] for e in events] == ["submitted"]


class TestReplay:
    def test_full_lifecycle_fold(self, tmp_path):
        with make_ledger(tmp_path, clock=FakeClock()) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append("leased", "j1", owner="1:w", attempt=1, expires=99.0)
            ledger.append("running", "j1", owner="1:w")
            ledger.append("heartbeat", "j1", owner="1:w", expires=120.0)
            ledger.append("completed", "j1", result={"recomputed": 2})
            jobs = ledger.replay()
        job = jobs["j1"]
        assert job.state == "completed"
        assert job.attempt == 1
        assert job.heartbeats == 1
        assert job.result == {"recomputed": 2}
        assert job.owner is None
        assert job.terminal

    def test_requeue_resets_owner(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append("leased", "j1", owner="1:w", attempt=1, expires=9.0)
            ledger.append("requeued", "j1", reason="expired")
            job = ledger.replay()["j1"]
        assert job.state == "queued"
        assert job.owner is None
        assert job.attempt == 1  # attempts survive the requeue

    def test_event_for_unknown_job_is_corruption(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
        path = tmp_path / "ledger.jsonl"
        with path.open("a") as handle:
            handle.write(
                json.dumps(
                    {"kind": "event", "event": "running", "job": "ghost", "t": 1}
                )
                + "\n"
            )
        with make_ledger(tmp_path) as ledger:
            with pytest.raises(CheckpointError, match="unknown job ghost"):
                ledger.replay()

    def test_terminal_states_are_the_documented_set(self):
        assert TERMINAL_STATES == {
            "completed",
            "failed",
            "poisoned",
            "cancelled",
        }


class TestRecover:
    def test_dead_owner_lease_requeued(self, tmp_path):
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append(
                "leased", "j1", owner=f"{pid}:w", attempt=1, expires=1e12
            )
            jobs = ledger.recover(max_attempts=3)
        assert jobs["j1"].state == "queued"
        # and the requeue is durable:
        with make_ledger(tmp_path) as ledger:
            assert ledger.replay()["j1"].state == "queued"

    def test_live_owner_inside_ttl_left_alone(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append(
                "leased",
                "j1",
                owner=f"{os.getpid()}:w",
                attempt=1,
                expires=1e12,
            )
            jobs = ledger.recover(max_attempts=3)
        assert jobs["j1"].state == "leased"

    def test_expired_lease_requeued_even_if_owner_alive(self, tmp_path):
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append(
                "leased",
                "j1",
                owner=f"{os.getpid()}:w",
                attempt=1,
                expires=0.0,
            )
            jobs = ledger.recover(max_attempts=3)
        assert jobs["j1"].state == "queued"

    def test_exhausted_attempts_poisoned(self, tmp_path):
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        with make_ledger(tmp_path) as ledger:
            ledger.append("submitted", "j1", spec=SPEC)
            ledger.append(
                "leased", "j1", owner=f"{pid}:w", attempt=3, expires=1e12
            )
            jobs = ledger.recover(max_attempts=3)
        assert jobs["j1"].state == "poisoned"
        assert "quarantined" in ledger.read_events(tmp_path / "ledger.jsonl")[-1][
            "error"
        ]
