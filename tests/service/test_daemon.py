"""Tests for the sweep service daemon core (repro.service.daemon)."""

import threading
import time

import pytest

from repro.core.runner import RetryPolicy
from repro.core.telemetry import MetricsRegistry
from repro.service import (
    AdmissionError,
    SweepService,
    UnknownJobError,
    job_digest,
    validate_spec,
)

SPEC = {"n_values": [2, 3], "steps": 200, "repeats": 2, "seed": 7}


def wait_terminal(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.status(job_id)
        if status["state"] in ("completed", "failed", "poisoned", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never became terminal: {status}")


class TestValidateSpec:
    def test_defaults_filled_in(self):
        spec = validate_spec({"n_values": [2]})
        assert spec["workload"] == "cas-counter"
        assert spec["engine"] == "batched"
        assert spec["scheduler"] == "uniform"
        assert spec["repeats"] == 5

    def test_equivalent_spellings_digest_equal(self):
        a = validate_spec({"n_values": [2], "steps": 100, "repeats": 2})
        b = validate_spec(
            {"repeats": 2, "steps": 100, "n_values": (2,), "seed": 0}
        )
        assert job_digest(a) == job_digest(b)

    def test_scu_requires_q_and_s(self):
        with pytest.raises(ValueError, match="scu workload requires"):
            validate_spec({"workload": "scu", "n_values": [2]})

    def test_repeats_below_two_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            validate_spec({"n_values": [2], "repeats": 1})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            validate_spec({"n_values": [2], "banana": 1})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            validate_spec({"workload": "no-such", "n_values": [2]})

    def test_crash_map_normalized(self):
        spec = validate_spec({"n_values": [4], "crash": {0: 50, "1": 60.5}})
        assert spec["crash"] == {"0": 50.0, "1": 60.5}

    def test_burn_in_must_be_below_steps(self):
        with pytest.raises(ValueError, match="burn_in"):
            validate_spec({"n_values": [2], "steps": 100, "burn_in": 100})

    def test_registry_workloads_accepted(self):
        spec = validate_spec({"workload": "msqueue", "n_values": [2]})
        assert spec["workload"] == "msqueue"

    def test_parameterized_schedulers_normalize(self):
        a = validate_spec({"n_values": [2], "scheduler": "epsilon:0.40"})
        b = validate_spec({"n_values": [2], "scheduler": "epsilon:.4"})
        assert a["scheduler"] == b["scheduler"] == "epsilon:0.4"
        assert job_digest(a) == job_digest(b)
        assert (
            validate_spec({"n_values": [2], "scheduler": "contention"})[
                "scheduler"
            ]
            == "contention:4"
        )

    def test_scheduler_parameter_ranges_checked(self):
        with pytest.raises(ValueError, match="focus"):
            validate_spec({"n_values": [2], "scheduler": "contention:0.5"})
        with pytest.raises(ValueError, match="epsilon"):
            validate_spec({"n_values": [2], "scheduler": "epsilon:1.5"})

    def test_ensemble_engine_restricted_to_scu_shapes(self):
        with pytest.raises(ValueError, match="ensemble"):
            validate_spec(
                {"workload": "treiber", "n_values": [2], "engine": "ensemble"}
            )
        with pytest.raises(ValueError, match="contention"):
            validate_spec(
                {
                    "n_values": [2],
                    "engine": "ensemble",
                    "scheduler": "contention:2",
                }
            )

    def test_workload_folds_into_spec_fingerprint(self):
        from repro.service.daemon import spec_fingerprint

        base = validate_spec({"n_values": [2], "steps": 100, "repeats": 2})
        named = validate_spec(
            {
                "workload": "msqueue",
                "n_values": [2],
                "steps": 100,
                "repeats": 2,
            }
        )
        # cas-counter keeps the historical None fingerprint; every other
        # zoo member folds its registry name.
        assert spec_fingerprint(base)["workload"] is None
        assert spec_fingerprint(named)["workload"] == "msqueue"


class TestFakeRunnerService:
    """Daemon mechanics with an injected (instant) job runner."""

    def make(self, tmp_path, runner, **kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("telemetry", MetricsRegistry())
        return SweepService(tmp_path, job_runner=runner, **kwargs)

    def test_submit_runs_and_completes(self, tmp_path):
        def runner(spec, store_dir, *, on_point, telemetry):
            on_point(1, 1)
            return {"recomputed": 0, "triples": []}

        with self.make(tmp_path, runner) as service:
            snap = service.submit(SPEC)
            assert snap["dedupe"] is False
            status = wait_terminal(service, snap["job_id"])
        assert status["state"] == "completed"
        assert status["heartbeats"] >= 1

    def test_resubmit_is_dedupe_hit(self, tmp_path):
        def runner(spec, store_dir, *, on_point, telemetry):
            return {"ok": True}

        telemetry = MetricsRegistry()
        with self.make(tmp_path, runner, telemetry=telemetry) as service:
            job_id = service.submit(SPEC)["job_id"]
            wait_terminal(service, job_id)
            again = service.submit(SPEC)
            assert again["dedupe"] is True
            assert again["state"] == "completed"
        assert telemetry.counters["service.dedupe_hits"] == 1

    def test_admission_control_sheds_load(self, tmp_path):
        gate = threading.Event()

        def runner(spec, store_dir, *, on_point, telemetry):
            gate.wait(30)
            return {}

        with self.make(tmp_path, runner, max_queue=1) as service:
            specs = [dict(SPEC, seed=i) for i in range(8)]
            rejected = None
            for spec in specs:
                try:
                    service.submit(spec)
                except AdmissionError as exc:
                    rejected = exc
                    break
            assert rejected is not None
            assert rejected.payload["error"] == "queue-full"
            assert rejected.payload["limit"] == 1
            assert rejected.payload["retriable"] is True
            gate.set()

    def test_failed_job_retried_then_poisoned(self, tmp_path):
        attempts = []

        def runner(spec, store_dir, *, on_point, telemetry):
            attempts.append(1)
            raise RuntimeError("injected persistent failure")

        policy = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0)
        with self.make(tmp_path, runner, retry_policy=policy) as service:
            job_id = service.submit(SPEC)["job_id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if service.status(job_id)["state"] == "poisoned":
                    break
                time.sleep(0.02)
            status = service.status(job_id)
        assert status["state"] == "poisoned"
        assert len(attempts) == 3  # max_retries + 1
        assert "injected persistent failure" in status["error"]

    def test_transient_failure_recovers(self, tmp_path):
        calls = []

        def runner(spec, store_dir, *, on_point, telemetry):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return {"ok": True}

        policy = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0)
        with self.make(tmp_path, runner, retry_policy=policy) as service:
            job_id = service.submit(SPEC)["job_id"]
            status = wait_terminal(service, job_id)
        assert status["state"] == "completed"
        assert status["attempt"] == 2

    def test_cancel_queued_job(self, tmp_path):
        gate = threading.Event()

        def runner(spec, store_dir, *, on_point, telemetry):
            gate.wait(30)
            return {}

        with self.make(tmp_path, runner) as service:
            blocker = service.submit(SPEC)["job_id"]
            queued = service.submit(dict(SPEC, seed=99))["job_id"]
            cancelled = service.cancel(queued)
            assert cancelled["state"] == "cancelled"
            gate.set()
            wait_terminal(service, blocker)

    def test_cancel_running_job_at_point_boundary(self, tmp_path):
        started = threading.Event()
        release = threading.Event()

        def runner(spec, store_dir, *, on_point, telemetry):
            started.set()
            for _ in range(600):
                release.wait(0.05)
                on_point(1, 600)  # raises JobCancelled once flagged
            return {}

        with self.make(tmp_path, runner, heartbeat_interval=0.01) as service:
            job_id = service.submit(SPEC)["job_id"]
            assert started.wait(10)
            service.cancel(job_id)
            status = wait_terminal(service, job_id)
        assert status["state"] == "cancelled"

    def test_unknown_job_raises(self, tmp_path):
        def runner(spec, store_dir, *, on_point, telemetry):
            return {}

        with self.make(tmp_path, runner) as service:
            with pytest.raises(UnknownJobError):
                service.status("no-such-job")

    def test_restart_requeues_queued_jobs(self, tmp_path):
        gate = threading.Event()
        ran = []

        def blocking_runner(spec, store_dir, *, on_point, telemetry):
            gate.wait(30)
            return {}

        service = SweepService(
            tmp_path, workers=1, job_runner=blocking_runner
        ).start()
        blocker = service.submit(SPEC)["job_id"]
        queued = service.submit(dict(SPEC, seed=5))["job_id"]
        gate.set()
        wait_terminal(service, blocker)
        wait_terminal(service, queued)
        service.shutdown()

        def counting_runner(spec, store_dir, *, on_point, telemetry):
            ran.append(spec["seed"])
            return {}

        # Restart: completed jobs replay as completed, nothing re-runs.
        with SweepService(
            tmp_path, workers=1, job_runner=counting_runner
        ) as service:
            assert service.status(blocker)["state"] == "completed"
            assert service.status(queued)["state"] == "completed"
            time.sleep(0.2)
        assert ran == []


class TestRealSweepService:
    """The daemon against the real ``latency_sweep`` job runner."""

    def test_results_bit_identical_to_direct_sweep_and_overlap_dedupes(
        self, tmp_path
    ):
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.sweep import latency_sweep

        telemetry = MetricsRegistry()
        with SweepService(
            tmp_path, workers=2, telemetry=telemetry
        ) as service:
            first = service.submit(SPEC)["job_id"]
            status = wait_terminal(service, first)
            assert status["state"] == "completed", status["error"]
            result = service.result(first)
            assert result["recomputed"] == 4
            assert result["warm_points"] == 0

            direct = latency_sweep(
                cas_counter,
                make_counter_memory,
                SPEC["n_values"],
                steps=SPEC["steps"],
                repeats=SPEC["repeats"],
                seed=SPEC["seed"],
                engine="batched",
            )
            for point, served in zip(direct, result["points"]):
                assert point.system_latency.mean == (
                    served["system_latency"]["mean"]
                )
                assert point.completion_rate.mean == (
                    served["completion_rate"]["mean"]
                )
                assert point.fairness_ratio.mean == (
                    served["fairness_ratio"]["mean"]
                )

            # An overlapping grid recomputes only the novel points.
            overlap = service.submit(dict(SPEC, n_values=[2, 3, 4]))
            assert overlap["dedupe"] is False
            status = wait_terminal(service, overlap["job_id"])
            assert status["state"] == "completed", status["error"]
            second = service.result(overlap["job_id"])
            assert second["warm_points"] == 4
            assert second["recomputed"] == 2
            shared = {tuple(t[:2]): t[2] for t in result["triples"]}
            for n, r, triple in second["triples"]:
                if (n, r) in shared:
                    assert shared[(n, r)] == triple
        counters = telemetry.counters
        assert counters["service.memo_warm_points"] == 4
        assert counters["service.completed"] == 2

    def test_identical_resubmission_recomputes_zero_points(self, tmp_path):
        telemetry = MetricsRegistry()
        with SweepService(
            tmp_path, workers=1, telemetry=telemetry
        ) as service:
            first = service.submit(SPEC)["job_id"]
            wait_terminal(service, first)
            result_one = service.result(first)
            again = service.submit(dict(SPEC))  # same content -> same job
            assert again["dedupe"] is True
            assert again["job_id"] == first
            assert service.result(first)["triples"] == result_one["triples"]
        assert telemetry.counters["service.dedupe_hits"] == 1
        # exactly one job's worth of points was ever computed
        assert telemetry.counters["service.recomputed_points"] == 4
