"""Tests for the HTTP API and client (repro.service.api / .client)."""

import json
import threading

import pytest

from repro.core.telemetry import MetricsRegistry
from repro.service import (
    AdmissionRejected,
    ServiceClient,
    ServiceClientError,
    SweepService,
    make_server,
)

SPEC = {"n_values": [2], "steps": 150, "repeats": 2, "seed": 3}


def _freeze_workers(service):
    """Stop the worker pool so submitted jobs stay queued forever.

    Lets the admission/409/cancel paths be tested deterministically —
    the teardown's ``shutdown`` re-queues whatever is left, durably.
    """
    service._stopping.set()
    for thread in service._threads:
        thread.join(timeout=10)


@pytest.fixture()
def fake_runner():
    def runner(spec, store_dir, *, on_point, telemetry):
        on_point(1, 1)
        return {"triples": [[2, 0, [1.0, 2.0, 3.0]]], "recomputed": 1}

    return runner


@pytest.fixture(params=["tcp", "unix"])
def served(request, tmp_path, fake_runner):
    """A running daemon + HTTP server + client, both transports."""
    service = SweepService(
        tmp_path,
        workers=1,
        max_queue=2,
        telemetry=MetricsRegistry(),
        job_runner=fake_runner,
    ).start()
    if request.param == "tcp":
        server = make_server(service, port=0)
        client = ServiceClient(port=server.server_address[1])
    else:
        socket_path = str(tmp_path / "api.sock")
        server = make_server(service, socket_path=socket_path)
        client = ServiceClient(socket_path=socket_path)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, client
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        service.shutdown()


class TestEndpoints:
    def test_healthz(self, served):
        _, client = served
        assert client.healthy()

    def test_submit_wait_result(self, served):
        _, client = served
        snap = client.submit(SPEC)
        assert snap["dedupe"] is False
        status = client.wait(snap["job_id"], timeout=30)
        assert status["state"] == "completed"
        result = client.result(snap["job_id"])
        assert result["triples"] == [[2, 0, [1.0, 2.0, 3.0]]]

    def test_invalid_spec_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as info:
            client.submit({"n_values": []})
        assert info.value.status == 400
        assert "n_values" in info.value.payload["error"]

    def test_unknown_job_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as info:
            client.status("no-such")
        assert info.value.status == 404

    def test_result_before_completion_is_409(self, served):
        service, client = served
        _freeze_workers(service)
        job_id = client.submit(dict(SPEC, seed=4))["job_id"]
        with pytest.raises(ServiceClientError) as info:
            client.result(job_id)
        assert info.value.status == 409
        assert "not completed" in info.value.payload["error"]

    def test_queue_full_is_429_with_payload(self, served):
        service, client = served
        _freeze_workers(service)
        payload = None
        codes = []
        for seed in range(10, 20):
            try:
                client.submit(dict(SPEC, seed=seed))
                codes.append(200)
            except AdmissionRejected as exc:
                codes.append(429)
                payload = exc.payload
                break
        assert codes[-1] == 429
        assert payload["error"] == "queue-full"
        assert payload["retriable"] is True
        assert payload["limit"] == 2

    def test_cancel_over_http(self, served):
        service, client = served
        _freeze_workers(service)
        job_id = client.submit(dict(SPEC, seed=30))["job_id"]
        snap = client.cancel(job_id)
        assert snap["state"] == "cancelled"
        assert client.status(job_id)["state"] == "cancelled"

    def test_jobs_listing(self, served):
        _, client = served
        job_id = client.submit(dict(SPEC, seed=40))["job_id"]
        client.wait(job_id, timeout=30)
        assert any(job["job_id"] == job_id for job in client.jobs())

    def test_metrics_endpoint_serves_service_group(self, served):
        _, client = served
        job_id = client.submit(dict(SPEC, seed=50))["job_id"]
        client.wait(job_id, timeout=30)
        report = client.metrics()
        assert report["counters"]["service.submitted"] >= 1
        assert report["counters"]["service.completed"] >= 1

    def test_unknown_endpoint_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as info:
            client._request("GET", "/teapot")
        assert info.value.status == 404


class TestClientConstruction:
    def test_exactly_one_transport_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ServiceClient()
        with pytest.raises(ValueError, match="exactly one"):
            ServiceClient(port=1, socket_path="/tmp/x")

    def test_from_root_without_daemon_is_loud(self, tmp_path):
        with pytest.raises(ServiceClientError, match="repro serve"):
            ServiceClient.from_root(tmp_path)

    def test_from_root_reads_endpoint(self, tmp_path):
        (tmp_path / "endpoint.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 12345})
        )
        client = ServiceClient.from_root(tmp_path)
        assert client.port == 12345
        (tmp_path / "endpoint.json").write_text(
            json.dumps({"socket": str(tmp_path / "api.sock")})
        )
        client = ServiceClient.from_root(tmp_path)
        assert client.socket_path == str(tmp_path / "api.sock")
