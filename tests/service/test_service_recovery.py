"""Chaos tests: SIGKILL the daemon, restart, assert nothing was lost.

The satellite scenario from the issue: kill the daemon *between lease
grant and first heartbeat* (armed via ``REPRO_SERVICE_CHAOS_LEASE_PAUSE``),
restart it, and prove the job is re-leased exactly once and the final
store is bit-identical to an uninterrupted run — no lost points, no
duplicated points.  A second arm kills the daemon mid-job (after points
have started landing) and asserts the resumed run converges to the same
bytes.
"""

import json

import numpy as np
import pytest

from repro.core.store import METRIC_COLUMNS
from repro.service import SweepService
from repro.testing.chaos import ServiceHarness

SPEC = {"n_values": [2, 3], "steps": 400, "repeats": 2, "seed": 11}


def store_point_records(store_dir):
    """Every ``(n, r)`` record in the store, duplicates included."""
    records = []
    for chunk in sorted(store_dir.glob("chunk-*.npz")):
        with np.load(chunk) as data:
            records.extend(
                (int(n), int(r)) for n, r in zip(data["n"], data["r"])
            )
    tail = store_dir / "tail.jsonl"
    if tail.exists():
        for line in tail.read_text().splitlines():
            if line.strip():
                record = json.loads(line)
                records.append((record["n"], record["r"]))
    return records


def store_triples(store_dir):
    """The ``{(n, r): triple}`` mapping a loader would see (last wins)."""
    triples = {}
    for chunk in sorted(store_dir.glob("chunk-*.npz")):
        with np.load(chunk) as data:
            for index in range(len(data["n"])):
                key = (int(data["n"][index]), int(data["r"][index]))
                triples[key] = tuple(
                    float(data[metric][index]) for metric in METRIC_COLUMNS
                )
    tail = store_dir / "tail.jsonl"
    if tail.exists():
        for line in tail.read_text().splitlines():
            if line.strip():
                record = json.loads(line)
                triples[(record["n"], record["r"])] = tuple(
                    float(v) for v in record["v"]
                )
    return triples


@pytest.fixture()
def reference_triples(tmp_path_factory):
    """Triples from an uninterrupted in-process run of the same spec."""
    root = tmp_path_factory.mktemp("reference")
    with SweepService(root, workers=1) as service:
        job_id = service.submit(SPEC)["job_id"]
        import time

        deadline = time.monotonic() + 120
        while service.status(job_id)["state"] != "completed":
            assert time.monotonic() < deadline, service.status(job_id)
            time.sleep(0.02)
        result = service.result(job_id)
    return {tuple(t[:2]): tuple(t[2]) for t in result["triples"]}


class TestLeaseWindowKill:
    def test_sigkill_between_lease_and_heartbeat_recovers_bit_identical(
        self, tmp_path, reference_triples
    ):
        root = tmp_path / "service"
        # Arm the chaos hook: the worker holds for 60s between the
        # durable "leased" event and its first heartbeat.
        with ServiceHarness(
            root, env={"REPRO_SERVICE_CHAOS_LEASE_PAUSE": "60"}
        ) as harness:
            client = harness.client()
            job_id = client.submit(SPEC)["job_id"]
            harness.wait_for_event("leased", count=1)
            # The kill window: leased, durably journaled, zero
            # heartbeats, zero points computed.
            assert harness.ledger_events("heartbeat") == []
            harness.sigkill()

        # Restart clean (no chaos hook): recovery re-leases and runs.
        with ServiceHarness(root) as harness:
            client = harness.client()
            status = client.wait(job_id, timeout=120)
            assert status["state"] == "completed", status
            leased = harness.ledger_events("leased")
            requeued = harness.ledger_events("requeued")
            assert len(leased) == 2  # original grant + exactly one re-lease
            assert len(requeued) == 1
            assert requeued[0]["reason"] == "owner-dead"
            assert leased[1]["attempt"] == 2
            result = client.result(job_id)
            assert harness.terminate() == 0

        store_dir = root / "stores" / job_id
        assert store_triples(store_dir) == reference_triples
        records = store_point_records(store_dir)
        assert sorted(records) == sorted(set(records))  # no duplicates
        assert {tuple(t[:2]): tuple(t[2]) for t in result["triples"]} == (
            reference_triples
        )

    def test_no_lock_or_endpoint_leftovers_after_recovery_cycle(
        self, tmp_path
    ):
        root = tmp_path / "service"
        with ServiceHarness(
            root, env={"REPRO_SERVICE_CHAOS_LEASE_PAUSE": "60"}
        ) as harness:
            client = harness.client()
            client.submit(SPEC)
            harness.wait_for_event("leased", count=1)
            harness.sigkill()
        # The SIGKILLed daemon leaks its lockfile (flock itself died
        # with the process); the restart must take over regardless...
        with ServiceHarness(root) as harness:
            assert harness.client().healthy()
            assert harness.terminate() == 0
        # ...and a graceful exit leaves no lock or endpoint debris.
        assert list(root.rglob("*.lock")) == []
        assert not (root / "endpoint.json").exists()


class TestMidJobKill:
    def test_sigkill_mid_job_converges_to_uninterrupted_bytes(
        self, tmp_path, reference_triples
    ):
        root = tmp_path / "service"
        with ServiceHarness(root) as harness:
            client = harness.client()
            job_id = client.submit(SPEC)["job_id"]
            harness.wait_for_event("running", count=1)
            harness.sigkill()

        with ServiceHarness(root) as harness:
            client = harness.client()
            status = client.wait(job_id, timeout=120)
            assert status["state"] == "completed", status
            result = client.result(job_id)
            assert harness.terminate() == 0

        store_dir = root / "stores" / job_id
        assert store_triples(store_dir) == reference_triples
        records = store_point_records(store_dir)
        assert sorted(records) == sorted(set(records))
        assert {tuple(t[:2]): tuple(t[2]) for t in result["triples"]} == (
            reference_triples
        )
