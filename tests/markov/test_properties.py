"""Unit tests for repro.markov.properties."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.properties import (
    communicating_classes,
    is_aperiodic,
    is_ergodic,
    is_irreducible,
    period,
    transition_graph,
)


def cycle_chain(k):
    """A deterministic k-cycle (irreducible, period k)."""
    mat = np.zeros((k, k))
    for i in range(k):
        mat[i, (i + 1) % k] = 1.0
    return MarkovChain(mat)


def lazy_cycle(k, laziness=0.5):
    """A k-cycle with self-loops (irreducible, aperiodic)."""
    mat = np.zeros((k, k))
    for i in range(k):
        mat[i, i] = laziness
        mat[i, (i + 1) % k] = 1.0 - laziness
    return MarkovChain(mat)


class TestIrreducibility:
    def test_cycle_is_irreducible(self):
        assert is_irreducible(cycle_chain(5))

    def test_absorbing_state_breaks_irreducibility(self):
        chain = MarkovChain([[0.5, 0.5], [0.0, 1.0]])
        assert not is_irreducible(chain)

    def test_two_components(self):
        chain = MarkovChain(
            [[1.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.0, 0.5, 0.5]]
        )
        classes = communicating_classes(chain)
        assert sorted(len(c) for c in classes) == [1, 2]


class TestPeriod:
    def test_cycle_period_equals_length(self):
        assert period(cycle_chain(4), 0) == 4

    def test_self_loop_gives_period_one(self):
        assert period(lazy_cycle(4), 0) == 1

    def test_even_bipartite_period_two(self):
        chain = MarkovChain([[0.0, 1.0], [1.0, 0.0]])
        assert period(chain, 0) == 2

    def test_mixed_cycle_lengths_gcd(self):
        # Cycles of lengths 2 and 3 through state 0 -> period 1.
        chain = MarkovChain.from_dict(
            {
                0: {1: 0.5, 2: 0.5},
                1: {0: 1.0},          # 0 -> 1 -> 0: length 2
                2: {3: 1.0},
                3: {0: 1.0},          # 0 -> 2 -> 3 -> 0: length 3
            }
        )
        assert period(chain, 0) == 1

    def test_state_with_no_cycle_raises(self):
        chain = MarkovChain([[0.0, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="period undefined"):
            period(chain, 0)


class TestErgodicity:
    def test_lazy_cycle_is_ergodic(self):
        assert is_ergodic(lazy_cycle(6))

    def test_pure_cycle_not_ergodic(self):
        assert not is_ergodic(cycle_chain(3))
        assert is_irreducible(cycle_chain(3))
        assert not is_aperiodic(cycle_chain(3))

    def test_reducible_not_ergodic(self):
        chain = MarkovChain([[1.0, 0.0], [0.5, 0.5]])
        assert not is_ergodic(chain)

    def test_single_absorbing_state_chain(self):
        chain = MarkovChain([[1.0]])
        assert is_ergodic(chain)


class TestTransitionGraph:
    def test_nodes_and_edges(self):
        chain = MarkovChain([[0.5, 0.5], [0.0, 1.0]])
        graph = transition_graph(chain)
        assert set(graph.nodes) == {0, 1}
        assert set(graph.edges) == {(0, 0), (0, 1), (1, 1)}

    def test_sparse_chain_graph(self):
        import scipy.sparse as sp

        mat = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        graph = transition_graph(MarkovChain(mat))
        assert set(graph.edges) == {(0, 1), (1, 0)}
