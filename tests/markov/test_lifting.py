"""Unit tests for repro.markov.lifting (generic machinery)."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.lifting import (
    Lifting,
    collapse_chain,
    ergodic_flow_matrix,
    verify_lifting,
)
from repro.markov.stationary import stationary_distribution


def fine_and_coarse_symmetric():
    """A 4-state chain symmetric under swapping (0,1) and (2,3) pairs.

    The collapse {0,1} -> A, {2,3} -> B is an exact lifting.
    """
    fine = MarkovChain(
        [
            [0.1, 0.1, 0.4, 0.4],
            [0.1, 0.1, 0.4, 0.4],
            [0.3, 0.3, 0.2, 0.2],
            [0.3, 0.3, 0.2, 0.2],
        ]
    )
    coarse = MarkovChain([[0.2, 0.8], [0.6, 0.4]], ["A", "B"])
    mapping = lambda s: "A" if s in (0, 1) else "B"
    return fine, coarse, mapping


class TestErgodicFlows:
    def test_flow_conservation(self):
        rng = np.random.default_rng(0)
        mat = rng.random((5, 5)) + 0.1
        mat /= mat.sum(axis=1, keepdims=True)
        chain = MarkovChain(mat)
        flows = ergodic_flow_matrix(chain)
        assert flows.sum() == pytest.approx(1.0)
        # sum_i Q_ij == sum_i Q_ji == pi_j
        pi = stationary_distribution(chain)
        assert np.allclose(flows.sum(axis=0), pi)
        assert np.allclose(flows.sum(axis=1), pi)

    def test_sparse_flow(self):
        import scipy.sparse as sp

        chain = MarkovChain(sp.csr_matrix(np.array([[0.5, 0.5], [0.5, 0.5]])))
        flows = ergodic_flow_matrix(chain)
        assert flows.sum() == pytest.approx(1.0)

    def test_pi_shape_checked(self):
        chain = MarkovChain([[1.0]])
        with pytest.raises(ValueError, match="shape"):
            ergodic_flow_matrix(chain, np.array([0.5, 0.5]))


class TestLifting:
    def test_symmetric_example_is_lifting(self):
        fine, coarse, mapping = fine_and_coarse_symmetric()
        report = verify_lifting(fine, coarse, mapping)
        assert report.is_lifting
        assert report.max_flow_error < 1e-12
        assert report.max_stationary_error < 1e-12

    def test_wrong_coarse_chain_detected(self):
        fine, _, mapping = fine_and_coarse_symmetric()
        wrong = MarkovChain([[0.5, 0.5], [0.5, 0.5]], ["A", "B"])
        report = verify_lifting(fine, wrong, mapping)
        assert not report.is_lifting

    def test_empty_preimage_rejected(self):
        fine, _, _ = fine_and_coarse_symmetric()
        coarse = MarkovChain(
            [[0.2, 0.8, 0.0], [0.6, 0.4, 0.0], [0.0, 0.0, 1.0]],
            ["A", "B", "C"],
        )
        with pytest.raises(ValueError, match="empty preimages"):
            Lifting(fine, coarse, lambda s: "A" if s in (0, 1) else "B")

    def test_preimage_query(self):
        fine, coarse, mapping = fine_and_coarse_symmetric()
        lifting = Lifting(fine, coarse, mapping)
        assert sorted(lifting.preimage("A")) == [0, 1]
        assert sorted(lifting.preimage("B")) == [2, 3]

    def test_collapse_vector_lemma1(self):
        fine, coarse, mapping = fine_and_coarse_symmetric()
        lifting = Lifting(fine, coarse, mapping)
        fine_pi = stationary_distribution(fine)
        coarse_pi = stationary_distribution(coarse)
        assert np.allclose(lifting.collapse_vector(fine_pi), coarse_pi)

    def test_collapse_vector_shape_checked(self):
        fine, coarse, mapping = fine_and_coarse_symmetric()
        lifting = Lifting(fine, coarse, mapping)
        with pytest.raises(ValueError, match="shape"):
            lifting.collapse_vector(np.ones(3))


class TestCollapseChain:
    def test_reconstructs_coarse_chain(self):
        fine, coarse, mapping = fine_and_coarse_symmetric()
        rebuilt = collapse_chain(fine, mapping)
        for a in coarse.states:
            for b in coarse.states:
                assert rebuilt.probability(a, b) == pytest.approx(
                    coarse.probability(a, b)
                )

    def test_collapse_identity_mapping(self):
        fine, _, _ = fine_and_coarse_symmetric()
        rebuilt = collapse_chain(fine, lambda s: s)
        assert np.allclose(rebuilt.dense(), fine.dense())

    def test_collapsed_chain_is_stochastic(self):
        fine, _, mapping = fine_and_coarse_symmetric()
        rebuilt = collapse_chain(fine, mapping)
        assert np.allclose(rebuilt.dense().sum(axis=1), 1.0)
