"""Unit tests for repro.markov.hitting."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.hitting import (
    expected_hitting_times,
    expected_return_time,
    fundamental_matrix,
    return_times_from_stationary,
)
from repro.markov.stationary import stationary_distribution


def biased_walk(k, p=0.5):
    """A random walk on 0..k-1 with reflecting ends."""
    mat = np.zeros((k, k))
    for i in range(k):
        if i == 0:
            mat[i, 1] = 1.0
        elif i == k - 1:
            mat[i, k - 2] = 1.0
        else:
            mat[i, i + 1] = p
            mat[i, i - 1] = 1 - p
    return MarkovChain(mat)


class TestHittingTimes:
    def test_target_states_zero(self):
        chain = biased_walk(5)
        hits = expected_hitting_times(chain, [0])
        assert hits[0] == 0.0

    def test_simple_geometric(self):
        # From state 0, hit state 1 with per-step probability p:
        # expected hitting time 1/p.
        p = 0.25
        chain = MarkovChain([[1 - p, p], [0.0, 1.0]])
        hits = expected_hitting_times(chain, [1])
        assert hits[0] == pytest.approx(1.0 / p)

    def test_symmetric_walk_quadratic(self):
        # Simple symmetric walk on a path with reflecting boundaries:
        # hitting time of 0 from the far end is known to be (k-1)^2.
        k = 6
        chain = biased_walk(k, p=0.5)
        hits = expected_hitting_times(chain, [0])
        assert hits[k - 1] == pytest.approx((k - 1) ** 2)

    def test_unreachable_target_raises(self):
        chain = MarkovChain([[1.0, 0.0], [0.5, 0.5]])
        with pytest.raises(ArithmeticError, match="singular|reach"):
            expected_hitting_times(chain, [1])

    def test_requires_targets(self):
        with pytest.raises(ValueError):
            expected_hitting_times(MarkovChain([[1.0]]), [])

    def test_sparse_matches_dense(self):
        import scipy.sparse as sp

        dense = biased_walk(7, p=0.4)
        sparse = MarkovChain(sp.csr_matrix(dense.dense()))
        hd = expected_hitting_times(dense, [0])
        hs = expected_hitting_times(sparse, [0])
        for state in dense.states:
            assert hd[state] == pytest.approx(hs[state])


class TestReturnTimes:
    def test_matches_stationary_inverse(self):
        rng = np.random.default_rng(7)
        mat = rng.random((5, 5)) + 0.05
        mat /= mat.sum(axis=1, keepdims=True)
        chain = MarkovChain(mat)
        pi = stationary_distribution(chain)
        for i, state in enumerate(chain.states):
            direct = expected_return_time(chain, state)
            assert direct == pytest.approx(1.0 / pi[i], rel=1e-8)

    def test_return_times_from_stationary_agrees(self):
        chain = biased_walk(5)
        # Periodic chain: stationary exists (irreducible) and Theorem 1's
        # identity still holds for return times.
        via_pi = return_times_from_stationary(chain)
        for state in chain.states:
            assert via_pi[state] == pytest.approx(
                expected_return_time(chain, state), rel=1e-8
            )


class TestFundamentalMatrix:
    def test_expected_visits_gambler(self):
        # Gambler's ruin on {0,1,2} with absorbing ends; from state 1 the
        # expected number of visits to state 1 is 1 (it never returns).
        mat = np.array(
            [[1.0, 0.0, 0.0], [0.5, 0.0, 0.5], [0.0, 0.0, 1.0]]
        )
        chain = MarkovChain(mat)
        fundamental = fundamental_matrix(chain, [0, 2])
        assert fundamental.shape == (1, 1)
        assert fundamental[0, 0] == pytest.approx(1.0)

    def test_all_absorbing_rejected(self):
        with pytest.raises(ValueError):
            fundamental_matrix(MarkovChain([[1.0]]), [0])
