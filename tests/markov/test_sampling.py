"""Unit tests for repro.markov.sampling."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.sampling import (
    empirical_distribution,
    hitting_time_samples,
    sample_path,
    sample_steps,
)
from repro.markov.stationary import stationary_distribution


def swap_chain():
    return MarkovChain([[0.0, 1.0], [1.0, 0.0]], ["a", "b"])


class TestSamplePath:
    def test_deterministic_chain_path(self):
        path = sample_path(swap_chain(), "a", 4, rng=0)
        assert path == ["a", "b", "a", "b", "a"]

    def test_length(self):
        assert len(sample_path(swap_chain(), "a", 10, rng=0)) == 11

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            sample_path(swap_chain(), "a", -1)

    def test_seed_reproducibility(self):
        chain = MarkovChain([[0.5, 0.5], [0.5, 0.5]])
        assert sample_path(chain, 0, 50, rng=42) == sample_path(chain, 0, 50, rng=42)

    def test_sparse_chain_sampling(self):
        import scipy.sparse as sp

        chain = MarkovChain(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))
        path = sample_path(chain, 0, 3, rng=0)
        assert path == [0, 1, 0, 1]


class TestEmpiricalDistribution:
    def test_converges_to_stationary(self):
        p, q = 0.3, 0.1
        chain = MarkovChain([[1 - p, p], [q, 1 - q]])
        pi = stationary_distribution(chain)
        freq = empirical_distribution(chain, 0, 60_000, rng=1, burn_in=1_000)
        assert np.allclose(freq, pi, atol=0.02)

    def test_burn_in_validation(self):
        with pytest.raises(ValueError):
            empirical_distribution(swap_chain(), "a", 10, burn_in=10)


class TestHittingTimeSamples:
    def test_geometric_mean(self):
        p = 0.2
        chain = MarkovChain([[1 - p, p], [0.0, 1.0]])
        samples = hitting_time_samples(chain, 0, 1, 4_000, rng=2)
        assert samples.mean() == pytest.approx(1.0 / p, rel=0.1)

    def test_minimum_is_one(self):
        chain = swap_chain()
        samples = hitting_time_samples(chain, "a", "b", 10, rng=0)
        assert np.all(samples == 1)

    def test_return_time_counts_from_one(self):
        # Hitting the start state itself counts the return time (>= 1).
        chain = MarkovChain([[0.5, 0.5], [0.5, 0.5]])
        samples = hitting_time_samples(chain, 0, 0, 2_000, rng=3)
        assert samples.min() >= 1
        assert samples.mean() == pytest.approx(2.0, rel=0.1)

    def test_unreachable_raises(self):
        chain = MarkovChain([[1.0, 0.0], [0.5, 0.5]])
        with pytest.raises(ArithmeticError, match="max_steps"):
            hitting_time_samples(chain, 0, 1, 1, max_steps=100)
