"""Tests for repro.markov.spectral."""

import numpy as np
import pytest

from repro.chains.counter import counter_global_chain
from repro.chains.parallel import parallel_system_chain
from repro.chains.scu import scu_system_chain
from repro.markov.chain import MarkovChain
from repro.markov.spectral import (
    eigenvalues,
    relaxation_time,
    slem,
    spectral_gap,
)


class TestBasics:
    def test_leading_eigenvalue_is_one(self):
        chain = MarkovChain([[0.9, 0.1], [0.4, 0.6]])
        values = eigenvalues(chain)
        assert np.abs(values[0]) == pytest.approx(1.0)

    def test_two_state_slem_closed_form(self):
        # Eigenvalues of [[1-p, p], [q, 1-q]] are 1 and 1 - p - q.
        p, q = 0.3, 0.2
        chain = MarkovChain([[1 - p, p], [q, 1 - q]])
        assert slem(chain) == pytest.approx(abs(1 - p - q))
        assert spectral_gap(chain) == pytest.approx(p + q)

    def test_identity_chain(self):
        chain = MarkovChain(np.eye(3))
        assert slem(chain) == pytest.approx(1.0)
        assert relaxation_time(chain) == float("inf")

    def test_relaxation_time_inverse_gap(self):
        chain = MarkovChain([[0.5, 0.5], [0.5, 0.5]])
        assert spectral_gap(chain) == pytest.approx(1.0)
        assert relaxation_time(chain) == pytest.approx(1.0)


class TestPaperChains:
    def test_scan_validate_chain_has_unit_slem(self):
        # The spectral signature of the period-2 finding.
        assert slem(scu_system_chain(4)) == pytest.approx(1.0, abs=1e-9)

    def test_parallel_chain_has_unit_slem(self):
        assert slem(parallel_system_chain(3, 3)) == pytest.approx(1.0, abs=1e-9)

    def test_counter_chain_is_genuinely_ergodic(self):
        gap = spectral_gap(counter_global_chain(8))
        assert gap > 0.05

    def test_counter_relaxation_grows_slowly(self):
        # Relaxation time grows sublinearly (~sqrt(n)), like the latency.
        times = [relaxation_time(counter_global_chain(n)) for n in (8, 32, 128)]
        assert times[0] < times[1] < times[2]
        assert times[2] < 128  # far below linear growth
