"""Tests for repro.markov.mixing."""

import numpy as np
import pytest

from repro.chains.scu import scu_system_chain
from repro.markov.chain import MarkovChain
from repro.markov.mixing import distance_to_stationary, mixing_time


def lazy_walk():
    return MarkovChain([[0.5, 0.5, 0.0], [0.25, 0.5, 0.25], [0.0, 0.5, 0.5]])


class TestDistance:
    def test_distance_decreases(self):
        chain = lazy_walk()
        d0 = distance_to_stationary(chain, 0, 0)
        d5 = distance_to_stationary(chain, 0, 5)
        d50 = distance_to_stationary(chain, 0, 50)
        assert d0 > d5 > d50
        assert d50 < 1e-3

    def test_zero_steps_is_initial_distance(self):
        chain = lazy_walk()
        pi = np.array([0.25, 0.5, 0.25])
        expected = 0.5 * np.abs(np.array([1.0, 0, 0]) - pi).sum()
        assert distance_to_stationary(chain, 0, 0) == pytest.approx(expected)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            distance_to_stationary(lazy_walk(), 0, -1)


class TestMixingTime:
    def test_aperiodic_chain_mixes(self):
        t = mixing_time(lazy_walk(), eps=0.01)
        assert 0 < t < 100

    def test_smaller_eps_larger_time(self):
        chain = lazy_walk()
        assert mixing_time(chain, eps=0.001) >= mixing_time(chain, eps=0.1)

    def test_periodic_chain_never_mixes_in_distribution(self):
        # The paper's scan-validate system chain has period 2: the raw
        # distribution oscillates forever.
        chain = scu_system_chain(3)
        with pytest.raises(ArithmeticError, match="cesaro"):
            mixing_time(chain, eps=0.05, max_steps=2_000)

    def test_periodic_chain_mixes_in_cesaro_average(self):
        # ...but the time-average converges — which is why the latency
        # results survive the paper's ergodicity slip.
        chain = scu_system_chain(3)
        t = mixing_time(chain, eps=0.05, cesaro=True, max_steps=10_000)
        assert t > 0

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            mixing_time(lazy_walk(), eps=0.0)
