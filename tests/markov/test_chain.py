"""Unit tests for repro.markov.chain."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.chain import MarkovChain


def two_state(p=0.25, q=0.5):
    """A generic two-state chain."""
    return MarkovChain([[1 - p, p], [q, 1 - q]], ["a", "b"])


class TestConstruction:
    def test_dense_matrix_accepted(self):
        chain = two_state()
        assert chain.n_states == 2
        assert not chain.is_sparse

    def test_sparse_matrix_accepted(self):
        mat = sp.csr_matrix(np.array([[0.5, 0.5], [1.0, 0.0]]))
        chain = MarkovChain(mat)
        assert chain.is_sparse
        assert chain.probability(0, 1) == 0.5

    def test_default_states_are_indices(self):
        chain = MarkovChain(np.eye(3))
        assert chain.states == [0, 1, 2]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            MarkovChain(np.ones((2, 3)) / 3)

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValueError, match="sum"):
            MarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="negative"):
            MarkovChain([[1.2, -0.2], [0.5, 0.5]])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="distinct"):
            MarkovChain(np.eye(2), ["x", "x"])

    def test_rejects_label_count_mismatch(self):
        with pytest.raises(ValueError, match="state labels"):
            MarkovChain(np.eye(2), ["x"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MarkovChain(np.empty((0, 0)))

    def test_validate_false_skips_checks(self):
        chain = MarkovChain([[0.5, 0.0], [0.0, 0.5]], validate=False)
        assert chain.n_states == 2


class TestFromDict:
    def test_round_trip(self):
        chain = MarkovChain.from_dict(
            {"a": {"a": 0.9, "b": 0.1}, "b": {"a": 1.0}}
        )
        assert chain.probability("a", "b") == pytest.approx(0.1)
        assert chain.probability("b", "a") == 1.0

    def test_successor_only_states_get_indices(self):
        chain = MarkovChain.from_dict(
            {"a": {"b": 1.0}, "b": {"a": 1.0}}, validate=True
        )
        assert set(chain.states) == {"a", "b"}

    def test_sparse_output(self):
        chain = MarkovChain.from_dict({"a": {"a": 1.0}}, sparse=True)
        assert chain.is_sparse


class TestFromEnumeration:
    def test_explores_reachable_states(self):
        # Cycle over 5 states, only state 0 seeded.
        chain = MarkovChain.from_enumeration(
            [0], lambda s: [((s + 1) % 5, 1.0)]
        )
        assert chain.n_states == 5

    def test_max_states_enforced(self):
        with pytest.raises(ValueError, match="max_states"):
            MarkovChain.from_enumeration(
                [0], lambda s: [(s + 1, 1.0)], max_states=10
            )

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError, match="negative"):
            MarkovChain.from_enumeration([0], lambda s: [(0, -1.0)])

    def test_zero_probability_edges_skipped(self):
        chain = MarkovChain.from_enumeration(
            [0], lambda s: [(0, 1.0), (99, 0.0)]
        )
        assert 99 not in chain

    def test_dense_option(self):
        chain = MarkovChain.from_enumeration(
            [0], lambda s: [((s + 1) % 3, 1.0)], sparse=False
        )
        assert not chain.is_sparse


class TestAccessors:
    def test_index_of_and_contains(self):
        chain = two_state()
        assert chain.index_of("b") == 1
        assert "a" in chain
        assert "c" not in chain

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown state"):
            two_state().index_of("zzz")

    def test_successors(self):
        chain = two_state(p=0.25)
        succ = chain.successors("a")
        assert succ == {"a": 0.75, "b": 0.25}

    def test_successors_sparse(self):
        mat = sp.csr_matrix(np.array([[0.0, 1.0], [0.5, 0.5]]))
        chain = MarkovChain(mat, ["x", "y"])
        assert chain.successors("x") == {"y": 1.0}

    def test_iteration_and_len(self):
        chain = two_state()
        assert list(chain) == ["a", "b"]
        assert len(chain) == 2

    def test_dense_copy_is_independent(self):
        chain = two_state()
        dense = chain.dense()
        dense[0, 0] = 99.0
        assert chain.probability("a", "a") != 99.0


class TestEvolution:
    def test_step_distribution(self):
        chain = two_state(p=1.0, q=1.0)  # deterministic swap
        out = chain.step_distribution([1.0, 0.0])
        assert np.allclose(out, [0.0, 1.0])

    def test_evolve_multiple_steps(self):
        chain = two_state(p=1.0, q=1.0)
        out = chain.evolve([1.0, 0.0], 2)
        assert np.allclose(out, [1.0, 0.0])

    def test_evolve_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            two_state().evolve([1.0, 0.0], -1)

    def test_step_distribution_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            two_state().step_distribution([1.0, 0.0, 0.0])


class TestKStepProbability:
    def test_deterministic_cycle(self):
        chain = MarkovChain.from_enumeration(
            [0], lambda s: [((s + 1) % 3, 1.0)], sparse=False
        )
        assert chain.k_step_probability(0, 0, 3) == 1.0
        assert chain.k_step_probability(0, 1, 3) == 0.0
        assert chain.k_step_probability(0, 1, 1) == 1.0

    def test_zero_steps_is_identity(self):
        chain = two_state()
        assert chain.k_step_probability("a", "a", 0) == 1.0
        assert chain.k_step_probability("a", "b", 0) == 0.0

    def test_chapman_kolmogorov(self):
        # p^(2)_{ij} = sum_k p_ik p_kj.
        chain = two_state(p=0.3, q=0.6)
        direct = chain.k_step_probability("a", "b", 2)
        by_hand = sum(
            chain.probability("a", mid) * chain.probability(mid, "b")
            for mid in chain.states
        )
        assert direct == pytest.approx(by_hand)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            two_state().k_step_probability("a", "b", -1)


class TestRestriction:
    def test_restricted_renormalises(self):
        chain = MarkovChain(
            [[0.5, 0.25, 0.25], [0.2, 0.4, 0.4], [0.1, 0.1, 0.8]],
            ["a", "b", "c"],
        )
        sub = chain.restricted_to(["a", "b"])
        assert sub.n_states == 2
        row = sub.dense()[0]
        assert row.sum() == pytest.approx(1.0)
        # Ratio between kept targets preserved.
        assert row[0] / row[1] == pytest.approx(0.5 / 0.25)

    def test_restricted_rejects_escaping_state(self):
        chain = MarkovChain([[0.0, 1.0], [1.0, 0.0]], ["a", "b"])
        with pytest.raises(ValueError, match="leave"):
            chain.restricted_to(["a"])
