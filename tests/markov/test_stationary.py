"""Unit tests for repro.markov.stationary."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.stationary import stationary_distribution


def random_ergodic_chain(k, seed):
    """A dense random chain; strictly positive entries make it ergodic."""
    rng = np.random.default_rng(seed)
    mat = rng.random((k, k)) + 0.05
    mat /= mat.sum(axis=1, keepdims=True)
    return MarkovChain(mat)


class TestSolve:
    def test_two_state_closed_form(self):
        # pi = (q, p) / (p + q) for the generic two-state chain.
        p, q = 0.3, 0.2
        chain = MarkovChain([[1 - p, p], [q, 1 - q]])
        pi = stationary_distribution(chain)
        assert np.allclose(pi, [q / (p + q), p / (p + q)])

    def test_doubly_stochastic_is_uniform(self):
        mat = np.array(
            [[0.2, 0.3, 0.5], [0.5, 0.2, 0.3], [0.3, 0.5, 0.2]]
        )
        pi = stationary_distribution(MarkovChain(mat))
        assert np.allclose(pi, 1.0 / 3.0)

    def test_invariance(self):
        chain = random_ergodic_chain(8, seed=1)
        pi = stationary_distribution(chain)
        assert np.allclose(pi @ chain.dense(), pi)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_sparse_solve(self):
        dense = random_ergodic_chain(10, seed=2).dense()
        sparse_chain = MarkovChain(sp.csr_matrix(dense))
        pi_sparse = stationary_distribution(sparse_chain)
        pi_dense = stationary_distribution(MarkovChain(dense))
        assert np.allclose(pi_sparse, pi_dense)

    def test_single_state(self):
        pi = stationary_distribution(MarkovChain([[1.0]]))
        assert pi == pytest.approx([1.0])


class TestPower:
    def test_matches_solve(self):
        chain = random_ergodic_chain(6, seed=3)
        pi_solve = stationary_distribution(chain, method="solve")
        pi_power = stationary_distribution(chain, method="power", tol=1e-14)
        assert np.allclose(pi_solve, pi_power, atol=1e-10)

    def test_non_convergence_raises(self):
        # A 2-cycle never converges under power iteration from a
        # non-stationary start... but the uniform start *is* stationary,
        # so perturb via a 3-cycle with max_iterations too small.
        mat = np.zeros((3, 3))
        for i in range(3):
            mat[i, (i + 1) % 3] = 1.0
        chain = MarkovChain(mat)
        # Uniform start is exactly stationary for the cycle; use an
        # asymmetric ergodic chain with an absurdly tight iteration cap.
        slow = random_ergodic_chain(5, seed=4)
        with pytest.raises(ArithmeticError, match="converge"):
            stationary_distribution(slow, method="power", max_iterations=1, tol=0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            stationary_distribution(MarkovChain([[1.0]]), method="magic")
