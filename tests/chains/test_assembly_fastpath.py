"""The vectorized chain-assembly fast paths against their BFS references.

:func:`counter_global_chain` must reproduce the enumerated build exactly
(the BFS order ``[n, 1, ..., n - 1]`` is known in closed form, so state
order and matrix agree bitwise); :func:`scu_system_chain` uses a
canonical state order instead of BFS order, so its matrix is compared
after aligning the two chains by state label.  Both fast paths must
also keep the properties downstream code relies on: ``states[0]`` is
the all-``READ`` start state, and the exact-latency solvers (whose
caches are now bounded) return the same values through either build.
"""

import numpy as np
import pytest

from repro.chains.counter import (
    counter_global_chain,
    counter_global_chain_enumerated,
)
from repro.chains.scu import (
    clear_exact_chain_caches,
    scu_success_probability,
    scu_system_chain,
    scu_system_chain_enumerated,
    scu_system_latency_exact,
)
from repro.markov.stationary import stationary_distribution


@pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 17, 32])
def test_counter_global_chain_matches_enumerated_exactly(n):
    fast = counter_global_chain(n)
    reference = counter_global_chain_enumerated(n)
    assert fast.states == reference.states
    assert np.array_equal(fast.dense(), reference.dense())


@pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 17, 32])
def test_scu_system_chain_matches_enumerated_after_alignment(n):
    fast = scu_system_chain(n)
    reference = scu_system_chain_enumerated(n)
    assert sorted(fast.states) == sorted(reference.states)
    permutation = [fast.index_of(state) for state in reference.states]
    aligned = fast.dense()[np.ix_(permutation, permutation)]
    assert np.array_equal(aligned, reference.dense())


def test_scu_system_chain_keeps_start_state_first():
    # period() and the observation helpers anchor on states[0].
    for n in (1, 4, 12):
        assert scu_system_chain(n).states[0] == (n, 0)


def test_stationary_solutions_agree_between_builds():
    n = 20
    fast_pi = stationary_distribution(scu_system_chain(n))
    reference = scu_system_chain_enumerated(n)
    reference_pi = stationary_distribution(reference)
    fast = scu_system_chain(n)
    by_label_fast = dict(zip(fast.states, fast_pi))
    by_label_ref = dict(zip(reference.states, reference_pi))
    for state, probability in by_label_ref.items():
        assert by_label_fast[state] == pytest.approx(probability, abs=1e-12)


def test_exact_latency_caches_are_bounded_and_clearable():
    clear_exact_chain_caches()
    assert scu_system_latency_exact.cache_info().maxsize == 128
    assert scu_success_probability.cache_info().maxsize == 128

    value = scu_system_latency_exact(6)
    assert scu_system_latency_exact.cache_info().currsize >= 1
    clear_exact_chain_caches()
    assert scu_system_latency_exact.cache_info().currsize == 0
    assert scu_success_probability.cache_info().currsize == 0
    assert scu_system_latency_exact(6) == value
