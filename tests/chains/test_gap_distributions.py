"""Tests for the exact completion-gap distributions (repro.chains.gaps)
and the phase-type machinery behind them."""

import numpy as np
import pytest

from repro.chains.counter import counter_system_latency_exact
from repro.chains.gaps import (
    counter_gap_mean,
    counter_gap_pmf,
    counter_gap_quantile,
    scu_gap_mean,
    scu_gap_pmf,
    scu_gap_quantile,
)
from repro.chains.scu import scu_system_latency_exact
from repro.markov.phasetype import (
    phase_type_mean,
    phase_type_pmf,
    phase_type_quantile,
    phase_type_survival,
    validate_phase_type,
)


class TestPhaseTypeMachinery:
    def geometric(self, p):
        # One transient state; absorb with probability p.
        return np.array([1.0]), np.array([[1.0 - p]]), np.array([p])

    def test_geometric_pmf(self):
        start, sub, mark = self.geometric(0.25)
        pmf = phase_type_pmf(start, sub, mark, 5)
        expected = [0.25 * 0.75**k for k in range(5)]
        assert np.allclose(pmf, expected)

    def test_geometric_mean(self):
        start, sub, mark = self.geometric(0.2)
        assert phase_type_mean(start, sub, mark) == pytest.approx(5.0)

    def test_survival_complements_pmf(self):
        start, sub, mark = self.geometric(0.3)
        survival = phase_type_survival(start, sub, mark, 4)
        pmf = phase_type_pmf(start, sub, mark, 10)
        for k in range(4):
            assert survival[k] == pytest.approx(1.0 - pmf[:k].sum())

    def test_quantile(self):
        start, sub, mark = self.geometric(0.5)
        assert phase_type_quantile(start, sub, mark, 0.5) == 1
        assert phase_type_quantile(start, sub, mark, 0.9) == 4  # 1-0.5^4=0.9375

    def test_validation(self):
        with pytest.raises(ValueError, match="row-stochastic"):
            validate_phase_type(
                np.array([1.0]), np.array([[0.5]]), np.array([0.1])
            )
        with pytest.raises(ValueError, match="probability vector"):
            validate_phase_type(
                np.array([0.5]), np.array([[0.5]]), np.array([0.5])
            )
        with pytest.raises(ValueError, match="q must"):
            phase_type_quantile(np.array([1.0]), np.array([[0.5]]),
                                np.array([0.5]), 1.5)


class TestCounterGaps:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_mean_equals_z(self, n):
        assert counter_gap_mean(n) == pytest.approx(
            counter_system_latency_exact(n), rel=1e-9
        )

    def test_pmf_sums_to_one(self):
        pmf = counter_gap_pmf(6, 500)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_gap_one_probability(self):
        # P(gap = 1): from state 1 the next step completes w.p. 1/n.
        n = 5
        pmf = counter_gap_pmf(n, 3)
        assert pmf[0] == pytest.approx(1.0 / n)

    def test_quantiles_ordered(self):
        n = 16
        q50 = counter_gap_quantile(n, 0.5)
        q99 = counter_gap_quantile(n, 0.99)
        assert q50 < q99
        # A light tail: p99 within a small multiple of the mean.
        assert q99 < 6 * counter_gap_mean(n)

    def test_matches_simulation(self):
        from repro.algorithms.augmented_counter import (
            augmented_cas_counter,
            make_augmented_counter_memory,
        )
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        n = 6
        sim = Simulator(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_augmented_counter_memory(),
            rng=0,
        )
        sim.run(200_000)
        times = np.asarray(sim.recorder.completion_times)
        gaps = np.diff(times[times > 20_000])
        pmf = counter_gap_pmf(n, 12)
        for k in range(1, 6):
            empirical = float(np.mean(gaps == k))
            assert empirical == pytest.approx(pmf[k - 1], abs=0.02)


class TestScanValidateGaps:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_mean_equals_system_latency(self, n):
        assert scu_gap_mean(n) == pytest.approx(
            scu_system_latency_exact(n), rel=1e-9
        )

    def test_pmf_sums_to_one(self):
        pmf = scu_gap_pmf(5, 2_000)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_quantile_tail_light(self):
        n = 16
        q99 = scu_gap_quantile(n, 0.99)
        assert q99 < 8 * scu_gap_mean(n)

    def test_matches_simulation(self):
        from repro.core.scu import SCU

        n = 5
        spec = SCU(0, 1)
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            spec.factory(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=spec.memory(),
            rng=1,
        )
        sim.run(200_000)
        times = np.asarray(sim.recorder.completion_times)
        gaps = np.diff(times[times > 20_000])
        pmf = scu_gap_pmf(n, 12)
        for k in range(1, 8):
            empirical = float(np.mean(gaps == k))
            assert empirical == pytest.approx(pmf[k - 1], abs=0.02)
