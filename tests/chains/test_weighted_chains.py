"""Tests for the non-uniform-scheduler chains (repro.chains.weighted)."""

import numpy as np
import pytest

from repro.chains.counter import counter_system_latency_exact
from repro.chains.scu import scu_individual_latency_exact, scu_system_latency_exact
from repro.chains.weighted import (
    counter_weighted_latencies,
    scu_weighted_individual_chain,
    scu_weighted_latencies,
)


class TestReductionToUniform:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_scu_uniform_weights_match_symmetric_chain(self, n):
        w_system, individual = scu_weighted_latencies([1.0] * n)
        assert w_system == pytest.approx(scu_system_latency_exact(n), rel=1e-9)
        for pid in range(n):
            assert individual[pid] == pytest.approx(
                scu_individual_latency_exact(n, pid), rel=1e-9
            )

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_counter_uniform_weights_match(self, n):
        w_system, individual = counter_weighted_latencies([1.0] * n)
        assert w_system == pytest.approx(counter_system_latency_exact(n), rel=1e-9)
        assert individual[0] == pytest.approx(n * w_system, rel=1e-9)

    def test_weights_scale_invariant(self):
        a = scu_weighted_latencies([1.0, 2.0, 3.0])
        b = scu_weighted_latencies([10.0, 20.0, 30.0])
        assert a[0] == pytest.approx(b[0], rel=1e-9)


class TestSkewEffects:
    def test_slow_process_pays_superlinearly(self):
        # Halving a process's weight more than doubles its latency:
        # rarer CAS attempts are also more likely to be invalidated.
        _, uniform = scu_weighted_latencies([1.0, 1.0, 1.0, 1.0])
        _, skewed = scu_weighted_latencies([1.0, 1.0, 1.0, 0.5])
        assert skewed[3] > 2.0 * uniform[3]

    def test_system_latency_robust_to_mild_skew(self):
        w_uniform, _ = scu_weighted_latencies([1.0] * 4)
        w_skewed, _ = scu_weighted_latencies([1.2, 1.1, 0.9, 0.8])
        assert abs(w_skewed - w_uniform) / w_uniform < 0.05

    def test_fast_process_gains(self):
        _, latencies = counter_weighted_latencies([2.0, 1.0, 1.0])
        assert latencies[0] < latencies[1]
        assert latencies[1] == pytest.approx(latencies[2], rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            scu_weighted_latencies([1.0, 0.0])
        with pytest.raises(ValueError, match="non-empty"):
            scu_weighted_latencies([])
        with pytest.raises(ValueError, match="too large"):
            scu_weighted_latencies([1.0] * 13)


class TestAgreementWithSimulation:
    def test_weighted_chain_matches_skewed_simulation(self):
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.latency import measure_latencies
        from repro.core.scheduler import SkewedStochasticScheduler

        weights = [2.0, 1.0, 1.0]
        w_exact, individual_exact = scu_weighted_latencies(weights)
        m = measure_latencies(
            cas_counter(),
            SkewedStochasticScheduler(weights),
            n_processes=3,
            steps=400_000,
            memory=make_counter_memory(),
            rng=0,
        )
        assert m.system_latency == pytest.approx(w_exact, rel=0.05)
        assert m.individual[0] == pytest.approx(individual_exact[0], rel=0.08)
        assert m.individual[2] == pytest.approx(individual_exact[2], rel=0.08)
