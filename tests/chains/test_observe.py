"""Tests bridging simulated trajectories and the paper's chains,
state by state (repro.chains.observe)."""

import numpy as np
import pytest

from repro.chains.observe import scu_extended_state, scu_system_state
from repro.chains.scu import (
    CCAS,
    OLD_CAS,
    READ,
    scu_individual_chain,
    scu_system_chain,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.core.scu import SCU
from repro.markov.stationary import stationary_distribution
from repro.sim.executor import Simulator


def make_sim(n, rng=0):
    spec = SCU(0, 1)
    return Simulator(
        spec.factory(),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=spec.memory(),
        rng=rng,
    )


class TestObserver:
    def test_initial_state_all_read(self):
        sim = make_sim(3)
        sim.step()  # priming happens on first step; observe after it
        state = scu_extended_state(sim)
        # After one step, exactly one process has read: one CCAS.
        assert state.count(CCAS) == 1
        assert state.count(READ) == 2

    def test_non_scu_run_rejected(self):
        from repro.algorithms.parallel import parallel_code

        sim = Simulator(
            parallel_code(2),
            UniformStochasticScheduler(),
            n_processes=2,
            rng=0,
        )
        sim.step()
        with pytest.raises(ValueError, match="not an"):
            scu_extended_state(sim)

    def test_system_state_counts(self):
        sim = make_sim(4)
        for _ in range(50):
            sim.step()
        a, b = scu_system_state(sim)
        extended = scu_extended_state(sim)
        assert a == extended.count(READ)
        assert b == extended.count(OLD_CAS)


class TestTrajectoryMatchesChain:
    def test_observed_transitions_are_chain_transitions(self):
        n = 3
        chain = scu_individual_chain(n)
        sim = make_sim(n, rng=1)
        sim.step()
        previous = scu_extended_state(sim)
        for _ in range(300):
            sim.step()
            current = scu_extended_state(sim)
            assert chain.probability(previous, current) > 0
            previous = current

    def test_occupancy_matches_stationary_distribution(self):
        n = 4
        chain = scu_system_chain(n)
        pi = stationary_distribution(chain)
        sim = make_sim(n, rng=2)
        counts = {state: 0 for state in chain.states}
        total = 60_000
        burn_in = 5_000
        for t in range(total):
            sim.step()
            if t >= burn_in:
                counts[scu_system_state(sim)] += 1
        observed = np.array(
            [counts[state] / (total - burn_in) for state in chain.states]
        )
        assert 0.5 * np.abs(observed - pi).sum() < 0.02

    def test_forbidden_state_never_observed(self):
        n = 3
        sim = make_sim(n, rng=3)
        for _ in range(2_000):
            sim.step()
            state = scu_extended_state(sim)
            assert state != tuple([OLD_CAS] * n)
