"""Tests for the parallel-code chains (Section 6.2)."""

import numpy as np
import pytest

from repro.chains.parallel import (
    parallel_individual_chain,
    parallel_individual_latency_exact,
    parallel_lifting,
    parallel_lifting_map,
    parallel_system_chain,
    parallel_system_latency_exact,
)
from repro.markov.properties import is_irreducible, period
from repro.markov.stationary import stationary_distribution


class TestIndividualChain:
    def test_state_count(self):
        assert parallel_individual_chain(3, 4).n_states == 4**3

    def test_stationary_is_uniform(self):
        # The chain is doubly stochastic (Lemma 11's key observation).
        chain = parallel_individual_chain(2, 3)
        pi = stationary_distribution(chain)
        assert np.allclose(pi, 1.0 / chain.n_states)

    def test_q1_is_single_state(self):
        chain = parallel_individual_chain(3, 1)
        assert chain.n_states == 1

    def test_irreducible(self):
        assert is_irreducible(parallel_individual_chain(2, 4))

    def test_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            parallel_individual_chain(10, 10)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            parallel_individual_chain(0, 3)


class TestSystemChain:
    def test_state_count_is_compositions(self):
        # Weak compositions of n into q parts: C(n + q - 1, q - 1).
        from math import comb

        n, q = 4, 3
        chain = parallel_system_chain(n, q)
        assert chain.n_states == comb(n + q - 1, q - 1)

    def test_histogram_conservation(self):
        chain = parallel_system_chain(3, 4)
        for state in chain.states:
            assert sum(state) == 3

    def test_irreducible_with_period_q(self):
        # Reproduction finding: the paper says M_I and M_S are ergodic,
        # but the sum of all counters advances by exactly 1 mod q each
        # step, making both chains periodic with period q.  Lemma 11's
        # conclusions only need irreducibility (unique stationary
        # distribution and return-time identity), which holds.
        chain = parallel_system_chain(3, 3)
        assert is_irreducible(chain)
        assert period(chain, chain.states[0]) == 3


class TestLiftingAndLatency:
    def test_lifting_map(self):
        assert parallel_lifting_map((0, 2, 2, 1), 3) == (1, 1, 2)

    @pytest.mark.parametrize("n,q", [(2, 3), (3, 2), (4, 3)])
    def test_lifting_verifies(self, n, q):
        assert parallel_lifting(n, q).verify().is_lifting

    @pytest.mark.parametrize("n,q", [(2, 2), (3, 4), (5, 3), (4, 6)])
    def test_lemma11_exact_values(self, n, q):
        assert parallel_system_latency_exact(n, q) == pytest.approx(q, rel=1e-9)
        assert parallel_individual_latency_exact(n, q) == pytest.approx(
            n * q, rel=1e-9
        )
