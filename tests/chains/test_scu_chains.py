"""Tests for the scan-validate chains (Section 6.1)."""

import numpy as np
import pytest

from repro.chains.scu import (
    CCAS,
    OLD_CAS,
    READ,
    scu_full_system_chain,
    scu_full_system_latency_exact,
    scu_individual_chain,
    scu_individual_latency_exact,
    scu_lifting,
    scu_lifting_map,
    scu_phases,
    scu_success_probability,
    scu_system_chain,
    scu_system_latency_exact,
)
from repro.markov.properties import is_ergodic, is_irreducible, period
from repro.markov.stationary import stationary_distribution


class TestIndividualChain:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_state_count_is_3n_minus_1(self, n):
        chain = scu_individual_chain(n)
        assert chain.n_states == 3**n - 1

    def test_all_old_cas_state_absent(self):
        chain = scu_individual_chain(3)
        assert (OLD_CAS, OLD_CAS, OLD_CAS) not in chain

    def test_transitions_follow_paper_rules(self):
        chain = scu_individual_chain(2)
        # From (Read, Read): either process reads -> CCAS.
        succ = chain.successors((READ, READ))
        assert succ == {(CCAS, READ): 0.5, (READ, CCAS): 0.5}
        # From (CCAS, CCAS): a success turns the other into OldCAS.
        succ = chain.successors((CCAS, CCAS))
        assert succ == {(READ, OLD_CAS): 0.5, (OLD_CAS, READ): 0.5}
        # OldCAS fails and moves to Read.
        succ = chain.successors((OLD_CAS, READ))
        assert (READ, READ) in succ

    def test_irreducible_but_period_two(self):
        # Reproduction finding: the paper's Lemma 3 claims ergodicity, but
        # every step flips the parity of the number of Read processes, so
        # the chain is periodic with period 2.  Irreducibility (hence a
        # unique stationary distribution) is what actually holds.
        chain = scu_individual_chain(3)
        assert is_irreducible(chain)
        assert period(chain, chain.states[0]) == 2

    def test_n_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            scu_individual_chain(20)

    def test_symmetry_of_stationary(self):
        # Lemma 6: states equal up to permuting pids have equal mass.
        chain = scu_individual_chain(3)
        pi = stationary_distribution(chain)
        mass = {s: p for s, p in zip(chain.states, pi)}
        assert mass[(READ, CCAS, CCAS)] == pytest.approx(
            mass[(CCAS, READ, CCAS)], rel=1e-9
        )
        assert mass[(OLD_CAS, READ, CCAS)] == pytest.approx(
            mass[(CCAS, OLD_CAS, READ)], rel=1e-9
        )


class TestSystemChain:
    def test_initial_state_reachable_set(self):
        chain = scu_system_chain(2)
        # States: (2,0), (1,0), (0,0), (1,1), (0,1) — not (0,2).
        assert set(chain.states) == {(2, 0), (1, 0), (0, 0), (1, 1), (0, 1)}

    def test_transition_probabilities_n2(self):
        chain = scu_system_chain(2)
        assert chain.successors((0, 0)) == {(1, 1): 1.0}
        assert chain.successors((1, 1)) == {(0, 1): 0.5, (2, 0): 0.5}
        assert chain.successors((0, 1)) == {(1, 1): 0.5, (1, 0): 0.5}
        assert chain.successors((2, 0)) == {(1, 0): 1.0}

    def test_irreducible_but_period_two(self):
        # See the individual-chain test: period 2, not ergodic (a
        # correction to the paper's Lemma 3).
        chain = scu_system_chain(4)
        assert is_irreducible(chain)
        assert period(chain, chain.states[0]) == 2

    def test_forbidden_state_absent(self):
        for n in (2, 3, 5):
            assert (0, n) not in scu_system_chain(n)


class TestLifting:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_lifting_map_counts(self, n):
        chain = scu_individual_chain(n)
        for state in chain.states:
            a, b = scu_lifting_map(state)
            assert a == sum(1 for x in state if x == READ)
            assert b == sum(1 for x in state if x == OLD_CAS)

    def test_lifting_verifies(self):
        report = scu_lifting(4).verify()
        assert report.is_lifting


class TestLatencies:
    def test_n1_latency_is_two(self):
        # A lone process completes every read+CAS pair.
        assert scu_system_latency_exact(1) == pytest.approx(2.0)

    def test_success_probability_inverse(self):
        n = 5
        mu = scu_success_probability(n)
        assert scu_system_latency_exact(n) == pytest.approx(1.0 / mu)

    @pytest.mark.parametrize("n", [2, 3, 5, 6])
    def test_individual_equals_n_times_system(self, n):
        # Lemma 7, computed from both chains independently.
        w_system = scu_system_latency_exact(n)
        w_individual = scu_individual_latency_exact(n)
        assert w_individual == pytest.approx(n * w_system, rel=1e-9)

    def test_sqrt_n_shape(self):
        # Theorem 5: W grows like sqrt(n); check the ratio W / sqrt(n)
        # stays within a narrow constant band.
        ratios = [
            scu_system_latency_exact(n) / np.sqrt(n) for n in (16, 64, 144, 256)
        ]
        assert max(ratios) / min(ratios) < 1.25
        assert all(1.0 < r < 3.0 for r in ratios)


class TestStationaryProfile:
    def test_half_the_processes_are_reading(self):
        # Exact flow balance: a decreases only on Read steps (rate a/n)
        # and increases on OldCAS and success steps (rate (b + c)/n), so
        # E[a] = n/2 exactly at stationarity.
        from repro.chains.scu import scu_stationary_profile

        for n in (2, 5, 16, 50):
            profile = scu_stationary_profile(n)
            assert profile["read"] == pytest.approx(0.5, abs=1e-9)

    def test_ccas_fraction_shrinks_like_inverse_sqrt_n(self):
        from repro.chains.scu import scu_stationary_profile

        constants = [
            scu_stationary_profile(n)["ccas"] * np.sqrt(n)
            for n in (16, 64, 256)
        ]
        assert max(constants) / min(constants) < 1.1
        assert all(0.4 < c < 0.7 for c in constants)

    def test_profile_sums_to_one(self):
        from repro.chains.scu import scu_stationary_profile

        profile = scu_stationary_profile(10)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_profile_consistent_with_latency(self):
        # mu = E[c] / n, so W = n / E[c] must equal the exact latency.
        from repro.chains.scu import scu_stationary_profile

        n = 20
        profile = scu_stationary_profile(n)
        assert 1.0 / profile["ccas"] / n == pytest.approx(
            scu_system_latency_exact(n) / n, rel=1e-9
        )


class TestFullChain:
    def test_phases_enumeration(self):
        phases = scu_phases(2, 2)
        assert phases == [
            ("P", 1),
            ("P", 2),
            ("S", 1, True),
            ("S", 2, True),
            ("S", 2, False),
            ("C", True),
            ("C", False),
        ]

    def test_q0_s1_matches_simple_system_chain(self):
        for n in (2, 3, 5):
            simple = scu_system_latency_exact(n)
            full = scu_full_system_latency_exact(n, 0, 1)
            assert full == pytest.approx(simple, rel=1e-9)

    def test_s0_equivalent_not_allowed(self):
        with pytest.raises(ValueError):
            scu_phases(0, 0)

    def test_full_chain_periodicity_depends_on_parameters(self):
        # With q = 1, s = 2 a successful method call costs 4 steps and a
        # failed loop 3, so cycles of coprime lengths exist: aperiodic.
        assert is_ergodic(scu_full_system_chain(3, 1, 2))
        # With q = 0, s = 1 the chain is the scan-validate chain: period 2.
        chain = scu_full_system_chain(3, 0, 1)
        assert period(chain, chain.states[0]) == 2

    def test_latency_increases_with_q(self):
        n = 4
        w0 = scu_full_system_latency_exact(n, 0, 1)
        w2 = scu_full_system_latency_exact(n, 2, 1)
        assert w2 > w0 + 1.0  # preamble adds at least its own length

    def test_latency_increases_with_s(self):
        n = 4
        w1 = scu_full_system_latency_exact(n, 0, 1)
        w3 = scu_full_system_latency_exact(n, 0, 3)
        assert w3 > w1

    def test_full_individual_chain_state_count(self):
        from repro.chains.scu import scu_full_individual_chain, scu_phases

        n, q, s = 2, 1, 1
        chain = scu_full_individual_chain(n, q, s)
        # Not all (q+2s+1)^n assignments are reachable (e.g. everybody
        # stale), but the chain is a subset of them.
        assert chain.n_states <= len(scu_phases(q, s)) ** n

    @pytest.mark.parametrize("n,q,s", [(2, 1, 1), (3, 1, 1), (3, 0, 2)])
    def test_full_lifting_verifies(self, n, q, s):
        # Extends Lemma 5's lifting to the whole class SCU(q, s).
        from repro.chains.scu import scu_full_lifting

        report = scu_full_lifting(n, q, s).verify()
        assert report.is_lifting
        assert report.max_flow_error < 1e-10

    @pytest.mark.parametrize("n,q,s", [(2, 1, 1), (3, 1, 1), (3, 0, 2), (2, 2, 2)])
    def test_full_fairness_exact(self, n, q, s):
        # Extends Lemma 7's W_i = n W to the whole class, computed
        # directly from the exponential individual chain.
        from repro.chains.scu import (
            scu_full_individual_latency_exact,
            scu_full_system_latency_exact,
        )

        wi = scu_full_individual_latency_exact(n, q, s)
        w = scu_full_system_latency_exact(n, q, s)
        assert wi == pytest.approx(n * w, rel=1e-9)

    def test_full_individual_chain_size_guard(self):
        from repro.chains.scu import scu_full_individual_chain

        with pytest.raises(ValueError, match="too large"):
            scu_full_individual_chain(10, 5, 5)

    def test_theorem4_shape_in_q(self):
        # For fixed s, W - q should be roughly constant in q (the preamble
        # contributes additively).
        n = 4
        deltas = [
            scu_full_system_latency_exact(n, q, 1) - q for q in (0, 2, 4)
        ]
        assert max(deltas) - min(deltas) < 1.5


class TestExactSolverMemoization:
    def test_repeat_calls_hit_the_cache(self):
        # The exact solvers are pure in their integer arguments, so they
        # are memoized; sweeps and benchmarks call them per point.
        from repro.chains.scu import (
            scu_full_system_latency_exact,
            scu_system_latency_exact,
        )

        for solver, arguments in [
            (scu_system_latency_exact, (6,)),
            (scu_full_system_latency_exact, (3, 2, 1)),
        ]:
            solver.cache_clear()
            first = solver(*arguments)
            hits_before = solver.cache_info().hits
            second = solver(*arguments)
            assert second == first
            assert solver.cache_info().hits == hits_before + 1

    def test_stationary_profile_stays_uncached(self):
        # scu_stationary_profile returns a mutable dict; caching it would
        # let one caller corrupt another's result.
        from repro.chains.scu import scu_stationary_profile

        assert not hasattr(scu_stationary_profile, "cache_info")
