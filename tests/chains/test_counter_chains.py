"""Tests for the augmented-CAS counter chains (Section 7)."""

import numpy as np
import pytest

from repro.chains.counter import (
    counter_global_chain,
    counter_individual_chain,
    counter_individual_latency_exact,
    counter_lifting,
    counter_lifting_map,
    counter_system_latency_exact,
    winning_state_probabilities,
)
from repro.markov.hitting import expected_return_time
from repro.markov.properties import is_ergodic
from repro.markov.stationary import stationary_distribution
from repro.stats.ramanujan import counter_return_times, ramanujan_q


class TestIndividualChain:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_state_count_is_2n_minus_1(self, n):
        assert counter_individual_chain(n).n_states == 2**n - 1

    def test_empty_set_absent(self):
        assert frozenset() not in counter_individual_chain(3)

    def test_transitions(self):
        chain = counter_individual_chain(2)
        both = frozenset([0, 1])
        succ = chain.successors(both)
        # Either process wins -> its singleton.
        assert succ == {frozenset([0]): 0.5, frozenset([1]): 0.5}
        # From a winning state: winner re-wins (self-loop) or the other
        # joins.
        succ = chain.successors(frozenset([0]))
        assert succ == {frozenset([0]): 0.5, both: 0.5}

    def test_winning_states_have_self_loops(self):
        chain = counter_individual_chain(3)
        for pid in range(3):
            state = frozenset([pid])
            assert chain.probability(state, state) == pytest.approx(1 / 3)

    def test_ergodic(self):
        assert is_ergodic(counter_individual_chain(4))

    def test_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            counter_individual_chain(25)


class TestGlobalChain:
    def test_states_are_sizes(self):
        chain = counter_global_chain(5)
        assert set(chain.states) == {1, 2, 3, 4, 5}

    def test_transition_structure(self):
        n = 4
        chain = counter_global_chain(n)
        for i in range(1, n):
            succ = chain.successors(i)
            assert succ[1] == pytest.approx(i / n)
            assert succ[i + 1] == pytest.approx(1 - i / n)
        assert chain.successors(n) == {1: 1.0}

    def test_only_state_one_self_loops(self):
        chain = counter_global_chain(4)
        assert chain.probability(1, 1) > 0
        for i in (2, 3, 4):
            assert chain.probability(i, i) == 0.0


class TestLemma12:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12])
    def test_return_time_matches_recurrence(self, n):
        chain = counter_global_chain(n)
        via_chain = expected_return_time(chain, 1)
        via_recurrence = counter_return_times(n)[-1]
        assert via_chain == pytest.approx(via_recurrence, rel=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 9, 16, 64, 256])
    def test_bound_two_sqrt_n(self, n):
        assert counter_return_times(n)[-1] <= 2 * np.sqrt(n)

    @pytest.mark.parametrize("n", [2, 5, 10, 50])
    def test_equals_ramanujan_q(self, n):
        assert counter_return_times(n)[-1] == pytest.approx(
            ramanujan_q(n), rel=1e-12
        )

    def test_system_latency_equals_return_time(self):
        for n in (2, 4, 7):
            assert counter_system_latency_exact(n) == pytest.approx(
                counter_return_times(n)[-1], rel=1e-9
            )


class TestLemma13And14:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_lifting_verifies(self, n):
        assert counter_lifting(n).verify().is_lifting

    def test_lifting_map(self):
        assert counter_lifting_map(frozenset([0, 2, 5])) == 3

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_individual_is_n_times_system(self, n):
        assert counter_individual_latency_exact(n) == pytest.approx(
            n * counter_system_latency_exact(n), rel=1e-9
        )

    def test_winning_states_equiprobable(self):
        # Lemma 14: pi'_{s_{p_i}} = pi_1 / n for all i.
        n = 5
        probs = winning_state_probabilities(n)
        assert np.allclose(probs, probs[0])
        global_pi = stationary_distribution(counter_global_chain(n))
        pi_1 = global_pi[counter_global_chain(n).index_of(1)]
        assert probs[0] == pytest.approx(pi_1 / n, rel=1e-9)
