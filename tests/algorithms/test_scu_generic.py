"""Tests for the generic SCU(q, s) skeleton (Algorithm 2)."""

import pytest

from repro.algorithms.scu import (
    Proposal,
    aux_register,
    make_scu_memory,
    scu_algorithm,
    scu_method,
)
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import CAS, Nop, Read


class TestMethodShape:
    def test_step_sequence_q2_s3(self):
        gen = scu_method(0, 2, 3)
        ops = [gen.send(None), gen.send(None)]  # two preamble steps
        assert all(isinstance(op, Nop) for op in ops)
        op = gen.send(None)
        assert op == Read("R")
        op = gen.send("view")  # decision register read
        assert op == Read(aux_register(1))
        op = gen.send(0)
        assert op == Read(aux_register(2))
        op = gen.send(0)
        assert isinstance(op, CAS)
        assert op.expected == "view"
        assert isinstance(op.new, Proposal)
        with pytest.raises(StopIteration) as stop:
            gen.send(True)
        assert stop.value.value == op.new

    def test_failed_cas_restarts_scan_not_preamble(self):
        gen = scu_method(0, 1, 1)
        assert isinstance(gen.send(None), Nop)   # preamble
        assert gen.send(None) == Read("R")       # scan
        op = gen.send("v0")
        assert isinstance(op, CAS)
        op = gen.send(False)                     # CAS failed
        assert op == Read("R")                   # straight back to the scan

    def test_proposals_are_unique_within_call(self):
        gen = scu_method(3, 0, 1)
        gen.send(None)
        cas1 = gen.send("a")
        gen.send(False)
        cas2 = gen.send("b")
        assert cas1.new != cas2.new
        assert cas1.new.pid == cas2.new.pid == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            list(scu_method(0, -1, 1))
        with pytest.raises(ValueError):
            list(scu_method(0, 0, 0))


class TestFactory:
    def test_completions_accumulate(self):
        sim = Simulator(
            scu_algorithm(1, 2),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_scu_memory(2),
            rng=0,
        )
        result = sim.run(20_000)
        assert result.total_completions > 0
        # The committed register holds the last winner's proposal.
        assert isinstance(result.memory.read("R"), Proposal)

    def test_proposals_unique_across_calls_and_processes(self):
        sim = Simulator(
            scu_algorithm(0, 1),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=make_scu_memory(1),
            record_history=True,
            rng=1,
        )
        result = sim.run(5_000)
        committed = [r.result for r in result.history.responses]
        keys = [(p.pid, p.sequence) for p in committed]
        assert len(keys) == len(set(keys))

    def test_solo_latency_is_q_plus_s_plus_1(self):
        # Alone: every method call costs exactly q + s + 1 steps.
        q, s = 3, 2
        sim = Simulator(
            scu_algorithm(q, s),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_scu_memory(s),
            rng=0,
        )
        result = sim.run((q + s + 1) * 10)
        assert result.total_completions == 10

    def test_victim_starved_by_spoiler_steps(self):
        # Drive the simulator so another process always commits between
        # the victim's read and CAS: the victim never completes.
        def strategy(time, active):
            # Two steps for p1 (read+CAS), then two for p0 which commit.
            return [1, 0, 0, 1][(time - 1) % 4]

        sim = Simulator(
            scu_algorithm(0, 1),
            AdversarialScheduler(strategy),
            n_processes=2,
            memory=make_scu_memory(1),
            rng=0,
        )
        result = sim.run(4_000)
        assert result.completions_of(0) > 0
        assert result.completions_of(1) == 0


class TestMemoryBuilder:
    def test_registers_created(self):
        memory = make_scu_memory(3, initial="init")
        assert memory.read("R") == "init"
        assert aux_register(1) in memory
        assert aux_register(2) in memory
        assert aux_register(3) not in memory


class TestFlattenedFactory:
    """scu_algorithm's single-frame generator is a hand-flattened version
    of ``repeat_method`` around :func:`scu_method` (a hot-path
    optimisation); the two must yield identical traces forever."""

    def test_trace_identical_to_repeat_method_reference(self):
        from repro.sim.process import repeat_method

        q, s = 2, 3

        def reference_factory():
            counters = {}

            def method_call(pid):
                start = counters.get(pid, 0)
                proposal = yield from scu_method(pid, q, s, sequence_start=start)
                counters[pid] = proposal.sequence + 1
                return proposal

            return repeat_method(method_call, method=f"scu({q},{s})")

        def make_responder():
            state = {"reads": 0, "cas": 0}

            def respond(item):
                if isinstance(item, CAS):
                    state["cas"] += 1
                    return state["cas"] % 3 == 0  # fail two, commit one
                if isinstance(item, Read):
                    state["reads"] += 1
                    return f"view{state['reads']}"
                return None

            return respond

        def drive(gen, steps):
            respond = make_responder()
            out = []
            item = gen.send(None)
            for _ in range(steps):
                out.append(item)
                item = gen.send(respond(item))
            return out

        flattened = drive(scu_algorithm(q, s)(pid=5), 400)
        reference = drive(reference_factory()(5), 400)
        assert flattened == reference

    def test_finite_calls_identical_to_reference(self):
        from repro.sim.process import repeat_method

        def reference():
            counters = {}

            def method_call(pid):
                proposal = yield from scu_method(
                    pid, 0, 1, sequence_start=counters.get(pid, 0)
                )
                counters[pid] = proposal.sequence + 1
                return proposal

            return repeat_method(method_call, method="scu(0,1)", calls=3)(2)

        def drain(gen):
            out, value = [], None
            try:
                while True:
                    item = gen.send(value)
                    out.append(item)
                    value = True if isinstance(item, CAS) else "v"
            except StopIteration:
                return out

        assert drain(scu_algorithm(0, 1, calls=3)(2)) == drain(reference())

    def test_parameters_validated_eagerly(self):
        with pytest.raises(ValueError):
            scu_algorithm(-1, 1)
        with pytest.raises(ValueError):
            scu_algorithm(0, 0)
