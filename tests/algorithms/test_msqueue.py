"""Tests for the Michael-Scott queue."""

import itertools

import pytest

from repro.algorithms.msqueue import (
    EMPTY,
    MSQueueWorkload,
    dequeue_method,
    enqueue_method,
    make_queue_memory,
    ms_queue_workload,
    queue_contents,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator


def run_ops(memory, gen):
    result = None
    try:
        op = gen.send(None)
        while True:
            op = gen.send(memory.apply(op))
    except StopIteration as stop:
        result = stop.value
    return result


class TestSequentialSemantics:
    def test_fifo_order(self):
        memory = make_queue_memory()
        ids = itertools.count(1)
        for value in ("a", "b", "c"):
            run_ops(memory, enqueue_method(0, next(ids), value))
        assert queue_contents(memory) == ["a", "b", "c"]
        assert run_ops(memory, dequeue_method(0)) == "a"
        assert run_ops(memory, dequeue_method(0)) == "b"
        assert queue_contents(memory) == ["c"]

    def test_dequeue_empty(self):
        memory = make_queue_memory()
        assert run_ops(memory, dequeue_method(0)) is EMPTY

    def test_interleaved_enqueue_helping(self):
        # p0 links its node but stalls before swinging the tail; p1's
        # enqueue must help swing the tail and still succeed.
        memory = make_queue_memory()
        gen0 = enqueue_method(0, 1, "first")
        op = gen0.send(None)                  # write value register
        op = gen0.send(memory.apply(op))      # read tail
        op = gen0.send(memory.apply(op))      # read tail.next
        op = gen0.send(memory.apply(op))      # CAS next: links node 1
        assert memory.apply(op) is True
        # p0 stalls here; tail still points at the dummy.
        assert memory.read("queue_tail") == 0
        run_ops(memory, enqueue_method(1, 2, "second"))
        assert queue_contents(memory) == ["first", "second"]
        assert memory.read("queue_tail") == 2


class TestConcurrentRuns:
    def test_fifo_per_producer(self):
        # Elements of one producer are dequeued in production order.
        sim = Simulator(
            ms_queue_workload(MSQueueWorkload(enqueue_fraction=0.5, seed=2)),
            UniformStochasticScheduler(),
            n_processes=6,
            memory=make_queue_memory(),
            record_history=True,
            rng=3,
        )
        result = sim.run(40_000)
        dequeued = [
            r.result
            for r in result.history.responses
            if r.method == "dequeue" and r.result is not EMPTY
        ]
        per_producer = {}
        for pid, seq in dequeued:
            per_producer.setdefault(pid, []).append(seq)
        for seqs in per_producer.values():
            assert seqs == sorted(seqs)

    def test_conservation(self):
        sim = Simulator(
            ms_queue_workload(MSQueueWorkload(enqueue_fraction=0.7, seed=5)),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_queue_memory(),
            record_history=True,
            rng=6,
        )
        result = sim.run(30_000)
        enqueued = [
            r.result for r in result.history.responses if r.method == "enqueue"
        ]
        dequeued = [
            r.result
            for r in result.history.responses
            if r.method == "dequeue" and r.result is not EMPTY
        ]
        remaining = queue_contents(result.memory)
        assert len(set(enqueued)) == len(enqueued)
        assert len(set(dequeued)) == len(dequeued)
        # A dequeue may return the value of an enqueue that linked its
        # node but has not yet swung the tail (its call is still pending),
        # so dequeued values are a subset of enqueued-or-pending.
        assert set(dequeued) | set(remaining) >= set(enqueued)

    def test_everyone_progresses(self):
        sim = Simulator(
            ms_queue_workload(MSQueueWorkload(seed=9)),
            UniformStochasticScheduler(),
            n_processes=8,
            memory=make_queue_memory(),
            rng=1,
        )
        result = sim.run(60_000)
        for pid in range(8):
            assert result.completions_of(pid) > 0

    def test_enqueue_fraction_validation(self):
        with pytest.raises(ValueError):
            ms_queue_workload(MSQueueWorkload(enqueue_fraction=-0.1))
