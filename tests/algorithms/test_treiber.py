"""Tests for the Treiber stack."""

import pytest

from repro.algorithms.treiber import (
    EMPTY,
    TreiberWorkload,
    make_stack_memory,
    pop_method,
    push_method,
    stack_contents,
    treiber_workload,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import CAS, Read
from repro.sim.process import Completion, Invoke, repeat_method


def run_ops(memory, gen):
    """Drive a single method-call generator to completion, applying ops."""
    result = None
    try:
        op = gen.send(None)
        while True:
            op = gen.send(memory.apply(op))
    except StopIteration as stop:
        result = stop.value
    return result


class TestSequentialSemantics:
    def test_push_pop_lifo(self):
        memory = make_stack_memory()
        for value in ("a", "b", "c"):
            run_ops(memory, push_method(0, value))
        assert stack_contents(memory) == ["c", "b", "a"]
        assert run_ops(memory, pop_method(0)) == "c"
        assert run_ops(memory, pop_method(0)) == "b"
        assert stack_contents(memory) == ["a"]

    def test_pop_empty_returns_sentinel(self):
        memory = make_stack_memory()
        assert run_ops(memory, pop_method(0)) is EMPTY

    def test_pop_empty_costs_one_step(self):
        memory = make_stack_memory()
        gen = pop_method(0)
        op = gen.send(None)
        assert isinstance(op, Read)
        with pytest.raises(StopIteration):
            gen.send(memory.apply(op))

    def test_push_retries_on_contention(self):
        memory = make_stack_memory()
        gen = push_method(0, "x")
        op = gen.send(None)          # read top
        top = memory.apply(op)
        # Another process pushes in between.
        run_ops(memory, push_method(1, "intruder"))
        op = gen.send(top)           # our CAS
        assert isinstance(op, CAS)
        result = memory.apply(op)
        assert result is False       # stale top
        op = gen.send(result)
        assert isinstance(op, Read)  # retry loop


class TestConcurrentRuns:
    def test_no_lost_or_duplicated_values(self):
        workload = TreiberWorkload(push_fraction=0.6, seed=3)
        sim = Simulator(
            treiber_workload(workload),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=make_stack_memory(),
            record_history=True,
            rng=4,
        )
        result = sim.run(30_000)
        pushed = [
            r.result for r in result.history.responses if r.method == "push"
        ]
        popped = [
            r.result
            for r in result.history.responses
            if r.method == "pop" and r.result is not EMPTY
        ]
        remaining = stack_contents(result.memory)
        # Conservation: everything pushed is either popped or still there
        # (modulo operations pending at cut-off, which are not in pushed).
        assert len(set(pushed)) == len(pushed)
        assert len(set(popped)) == len(popped)
        assert set(popped).issubset(set(pushed))
        accounted = set(popped) | set(remaining)
        missing = set(pushed) - accounted
        # An element may be held by a pending pop that already CASed it
        # out... impossible: a successful pop CAS completes the call at the
        # same step.  Nothing may go missing.
        assert missing == set()

    def test_progress_under_uniform_scheduler(self):
        sim = Simulator(
            treiber_workload(TreiberWorkload(seed=1)),
            UniformStochasticScheduler(),
            n_processes=8,
            memory=make_stack_memory(),
            rng=0,
        )
        result = sim.run(40_000)
        # Everyone completes operations (practical wait-freedom).
        for pid in range(8):
            assert result.completions_of(pid) > 0

    def test_push_fraction_validation(self):
        with pytest.raises(ValueError):
            treiber_workload(TreiberWorkload(push_fraction=1.5))

    def test_aba_immunity_with_equal_values(self):
        # Two nodes with the same payload are distinct objects; a CAS
        # expecting one never matches the other.
        memory = make_stack_memory()
        run_ops(memory, push_method(0, "same"))
        first = memory.read("stack_top")
        run_ops(memory, pop_method(0))
        run_ops(memory, push_method(0, "same"))
        second = memory.read("stack_top")
        assert first is not second
        assert not memory.apply(CAS("stack_top", first, None))
