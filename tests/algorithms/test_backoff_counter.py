"""Tests for the back-off counter (ABL3's subject)."""

import numpy as np
import pytest

from repro.algorithms.backoff_counter import (
    backoff_counter,
    backoff_counter_method,
    make_backoff_memory,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import CAS, Nop, Read


class TestMethodShape:
    def test_zero_backoff_equals_plain_counter(self):
        gen = backoff_counter_method(0, backoff=0)
        assert isinstance(gen.send(None), Read)
        op = gen.send(3)
        assert isinstance(op, CAS)
        # Failure goes straight back to the read.
        assert isinstance(gen.send(False), Read)

    def test_backoff_steps_after_failure(self):
        k = 3
        gen = backoff_counter_method(0, backoff=k)
        gen.send(None)
        gen.send(0)          # CAS
        ops = [gen.send(False)]
        for _ in range(k):
            ops.append(gen.send(None))
        assert all(isinstance(op, Nop) for op in ops[:k])
        assert isinstance(ops[k], Read)

    def test_success_skips_backoff(self):
        gen = backoff_counter_method(0, backoff=5)
        gen.send(None)
        gen.send(7)
        with pytest.raises(StopIteration) as stop:
            gen.send(True)
        assert stop.value.value == 7

    def test_negative_backoff_rejected(self):
        gen = backoff_counter_method(0, backoff=-1)
        with pytest.raises(ValueError):
            gen.send(None)


class TestBehaviour:
    def test_correctness_preserved(self):
        sim = Simulator(
            backoff_counter(4),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=make_backoff_memory(),
            rng=0,
        )
        result = sim.run(20_000)
        assert result.memory.read("counter") == result.total_completions

    def test_backoff_increases_system_latency(self):
        # The ABL3 finding: in the step-counting model, waiting costs.
        n = 16

        def latency(k):
            m = measure_latencies(
                backoff_counter(k),
                UniformStochasticScheduler(),
                n_processes=n,
                steps=100_000,
                memory=make_backoff_memory(),
                rng=k,
            )
            return m.system_latency

        assert latency(0) < latency(4) < latency(16)

    def test_sqrt_shape_persists(self):
        from repro.stats.estimators import fit_power_law

        ns = [16, 64]
        ws = []
        for n in ns:
            m = measure_latencies(
                backoff_counter(4),
                UniformStochasticScheduler(),
                n_processes=n,
                steps=120_000,
                memory=make_backoff_memory(),
                rng=n,
            )
            ws.append(m.system_latency)
        exponent, _ = fit_power_law(ns, ws)
        assert 0.3 < exponent < 0.7

    def test_everyone_still_progresses(self):
        sim = Simulator(
            backoff_counter(8),
            UniformStochasticScheduler(),
            n_processes=6,
            memory=make_backoff_memory(),
            rng=1,
        )
        result = sim.run(100_000)
        for pid in range(6):
            assert result.completions_of(pid) > 0
