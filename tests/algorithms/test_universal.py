"""Tests for the universal construction."""

import pytest

from repro.algorithms.universal import (
    UniversalObject,
    VersionedState,
    sequential_counter,
    sequential_stack,
    universal_workload,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator


def run_ops(memory, gen):
    result = None
    try:
        op = gen.send(None)
        while True:
            op = gen.send(memory.apply(op))
    except StopIteration as stop:
        result = stop.value
    return result


class TestSequentialObjects:
    def test_counter_object(self):
        obj = sequential_counter()
        memory = obj.make_memory()
        assert run_ops(memory, obj.method(0, "inc")) == 0
        assert run_ops(memory, obj.method(0, "inc")) == 1
        assert obj.current_state(memory) == 2

    def test_stack_object(self):
        obj = sequential_stack()
        memory = obj.make_memory()
        run_ops(memory, obj.method(0, ("push", "x")))
        run_ops(memory, obj.method(0, ("push", "y")))
        assert run_ops(memory, obj.method(0, ("pop",))) == "y"
        assert obj.current_state(memory) == ("x",)

    def test_stack_pop_empty(self):
        obj = sequential_stack()
        memory = obj.make_memory()
        assert run_ops(memory, obj.method(0, ("pop",))) is None

    def test_stack_unknown_op_rejected(self):
        obj = sequential_stack()
        memory = obj.make_memory()
        with pytest.raises(ValueError, match="unknown stack operation"):
            run_ops(memory, obj.method(0, ("peek",)))

    def test_versions_increase(self):
        obj = sequential_counter()
        memory = obj.make_memory()
        run_ops(memory, obj.method(0, "inc"))
        state = memory.read(obj.register)
        assert isinstance(state, VersionedState)
        assert state.version == 1
        assert state.installer == 0


class TestConcurrentUniversal:
    def test_counter_linearizes(self):
        obj = sequential_counter()
        sim = Simulator(
            universal_workload(obj, lambda pid, k: "inc"),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=obj.make_memory(),
            record_history=True,
            rng=0,
        )
        result = sim.run(20_000)
        values = [r.result for r in result.history.responses]
        # Fetch-and-increment semantics: results are exactly 0..k-1.
        assert sorted(values) == list(range(len(values)))
        assert obj.current_state(result.memory) == len(values)

    def test_custom_object_applies_operations(self):
        # A set object: operations add elements; state is a frozenset.
        obj = UniversalObject(
            lambda state, op: (state | {op}, op in state), frozenset()
        )
        sim = Simulator(
            universal_workload(obj, lambda pid, k: (pid, k)),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=obj.make_memory(),
            rng=1,
        )
        result = sim.run(5_000)
        state = obj.current_state(result.memory)
        assert len(state) == result.total_completions

    def test_pure_apply_preserves_old_state(self):
        # Concurrent scanners must still see the old state object; the
        # apply function returns a new tuple rather than mutating.
        obj = sequential_stack()
        memory = obj.make_memory()
        old_state = memory.read(obj.register)
        run_ops(memory, obj.method(0, ("push", 1)))
        assert old_state.state == ()  # untouched

    def test_bounded_calls(self):
        obj = sequential_counter()
        sim = Simulator(
            universal_workload(obj, lambda pid, k: "inc", calls=2),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=obj.make_memory(),
            rng=2,
        )
        result = sim.run(1_000)
        assert result.total_completions == 4
        assert result.stopped_early
