"""Tests for the blocking counters, the obstruction-free counter, and
the empirical progress classifier."""

import pytest

from repro.algorithms import locks, obstruction
from repro.core.classify import (
    ProgressClassification,
    classify_progress,
    collision_lockstep,
)
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import CAS, Read, Write


def holding_tas_lock(sim, pid):
    """The victim holds the TAS lock iff its next op is inside the CS."""
    op = sim.processes[pid].pending
    if isinstance(op, CAS):
        return False
    if isinstance(op, Read):
        return op.register == locks.COUNTER
    if isinstance(op, Write):
        return op.register in (locks.COUNTER, locks.LOCK)
    return False


def holding_ticket_lock(sim, pid):
    op = sim.processes[pid].pending
    if isinstance(op, Read):
        return op.register == locks.COUNTER
    if isinstance(op, Write):
        return op.register in (locks.COUNTER, locks.NOW_SERVING)
    return False


class TestTASLock:
    def test_counts_correctly_crash_free(self):
        sim = Simulator(
            locks.tas_lock_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=locks.make_tas_memory(),
            rng=0,
        )
        result = sim.run(20_000)
        assert result.memory.read(locks.COUNTER) == result.total_completions
        assert result.total_completions > 0

    def test_blocking_under_crash_in_critical_section(self):
        sim = Simulator(
            locks.tas_lock_counter(),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=locks.make_tas_memory(),
            rng=1,
        )
        crashed = False
        for _ in range(20_000):
            pid = sim.step()
            if not crashed and pid == 0 and holding_tas_lock(sim, 0):
                sim.processes[0].crash()
                crashed = True
                baseline = {p: sim.processes[p].completions for p in (1, 2)}
        assert crashed
        # Nobody else ever completes again: the lock is orphaned.
        assert sim.processes[1].completions == baseline[1]
        assert sim.processes[2].completions == baseline[2]


class TestTicketLock:
    def test_starvation_free_in_crash_free_uniform_runs(self):
        sim = Simulator(
            locks.ticket_lock_counter(),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=locks.make_ticket_memory(),
            rng=2,
        )
        result = sim.run(60_000)
        for pid in range(5):
            assert result.completions_of(pid) > 0

    def test_fifo_service_order(self):
        # Tickets are served in order: completions interleave fairly
        # even under an unfair-looking schedule.
        sim = Simulator(
            locks.ticket_lock_counter(),
            AdversarialScheduler.round_robin(),
            n_processes=3,
            memory=locks.make_ticket_memory(),
            rng=3,
        )
        result = sim.run(9_000)
        counts = [result.completions_of(p) for p in range(3)]
        assert max(counts) - min(counts) <= 1


class TestObstructionFreeCounter:
    def test_solo_run_completes_every_four_steps(self):
        sim = Simulator(
            obstruction.obstruction_free_counter(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=obstruction.make_obstruction_memory(),
            rng=4,
        )
        result = sim.run(40)
        assert result.total_completions == 10

    def test_livelock_under_collision_lockstep(self):
        # The witness that the algorithm is NOT lock-free: a schedule
        # under which nobody ever completes.
        sim = Simulator(
            obstruction.obstruction_free_counter(),
            collision_lockstep(),
            n_processes=2,
            memory=obstruction.make_obstruction_memory(),
            rng=5,
        )
        result = sim.run(30_000)
        assert result.total_completions == 0

    def test_practically_wait_free_under_uniform_scheduler(self):
        # Section 4's generalisation: the stochastic scheduler upgrades
        # obstruction-freedom too.
        sim = Simulator(
            obstruction.obstruction_free_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=obstruction.make_obstruction_memory(),
            rng=6,
        )
        result = sim.run(60_000)
        for pid in range(4):
            assert result.completions_of(pid) > 0

    def test_safety_counter_equals_completions(self):
        sim = Simulator(
            obstruction.obstruction_free_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=obstruction.make_obstruction_memory(),
            rng=7,
        )
        result = sim.run(20_000)
        assert result.memory.read(obstruction.COUNTER) == result.total_completions


class TestClassifier:
    def test_cas_counter_classified_lock_free(self):
        from repro.algorithms.counter import cas_counter, make_counter_memory

        label = classify_progress(
            cas_counter, make_counter_memory, steps=20_000
        ).label
        assert label.startswith("lock-free")

    def test_parallel_code_classified_wait_free(self):
        from repro.algorithms.parallel import parallel_code
        from repro.sim.memory import Memory

        classification = classify_progress(
            lambda: parallel_code(3), Memory, steps=20_000
        )
        assert classification.label == "wait-free"

    def test_obstruction_free_counter_classified(self):
        classification = classify_progress(
            obstruction.obstruction_free_counter,
            obstruction.make_obstruction_memory,
            steps=30_000,
        )
        assert classification.label.startswith("obstruction-free")
        assert classification.tolerates_crash
        assert not classification.progresses_under_collisions

    def test_tas_lock_classified_blocking(self):
        classification = classify_progress(
            locks.tas_lock_counter,
            locks.make_tas_memory,
            steps=30_000,
            crash_when=holding_tas_lock,
        )
        assert classification.label == "blocking (lock-based)"
        assert not classification.tolerates_crash

    def test_ticket_lock_classified_blocking(self):
        classification = classify_progress(
            locks.ticket_lock_counter,
            locks.make_ticket_memory,
            steps=30_000,
            crash_when=holding_ticket_lock,
        )
        assert not classification.tolerates_crash
