"""Tests for parallel code (Algorithm 4)."""

import pytest

from repro.algorithms.parallel import parallel_code, parallel_method
from repro.core.latency import measure_latencies
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import Nop, Write


class TestMethod:
    def test_q_steps_then_returns(self):
        gen = parallel_method(0, 3)
        steps = 0
        try:
            gen.send(None)
            steps += 1
            while True:
                gen.send(None)
                steps += 1
        except StopIteration as stop:
            assert stop.value == 3
        assert steps == 3

    def test_touch_register_writes_scratch(self):
        gen = parallel_method(2, 2, touch_register=True)
        op = gen.send(None)
        assert op == Write("scratch2", 0)

    def test_q_validation(self):
        with pytest.raises(ValueError):
            list(parallel_method(0, 0))


class TestLemma11Exact:
    @pytest.mark.parametrize("q,n", [(1, 3), (4, 2), (5, 6)])
    def test_system_latency_is_q(self, q, n):
        m = measure_latencies(
            parallel_code(q),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=40_000,
            rng=q * 10 + n,
        )
        assert m.system_latency == pytest.approx(q, rel=0.02)

    def test_individual_latency_is_nq(self):
        q, n = 3, 4
        m = measure_latencies(
            parallel_code(q),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=100_000,
            rng=0,
        )
        assert m.mean_individual_latency == pytest.approx(n * q, rel=0.05)

    def test_completions_independent_of_contention(self):
        # Parallel code never interferes: even a worst-case round robin
        # yields exactly one completion every q system steps.
        q, n = 4, 3
        sim = Simulator(
            parallel_code(q),
            AdversarialScheduler.round_robin(),
            n_processes=n,
        )
        result = sim.run(q * n * 10)
        assert result.total_completions == n * 10

    def test_wait_free_under_adversary(self):
        # Every process completes under any schedule that runs it: the
        # starve adversary can still not prevent others from finishing,
        # and the victim completes as soon as it runs alone.
        sim = Simulator(
            parallel_code(2),
            AdversarialScheduler.starve(victim=0),
            n_processes=2,
            crash_times={1: 101},
        )
        result = sim.run(200)
        # After pid 1 crashes, pid 0 is alone and must complete calls.
        assert result.completions_of(0) > 0
