"""Tests for Algorithm 1 (unbounded lock-free; Lemma 2)."""

import pytest

from repro.algorithms.unbounded import (
    make_unbounded_memory,
    unbounded_lockfree,
    unbounded_method,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.ops import Read, ReadModifyWrite


class TestMethod:
    def test_winning_first_step_completes(self):
        gen = unbounded_method(0, n_processes=4, initial_v=0)
        op = gen.send(None)
        assert isinstance(op, ReadModifyWrite)
        with pytest.raises(StopIteration) as stop:
            gen.send(0)  # augmented CAS returned expected value: success
        assert stop.value.value == 1

    def test_loser_spins_n_squared_v_reads(self):
        n = 3
        gen = unbounded_method(0, n_processes=n, initial_v=0)
        gen.send(None)
        op = gen.send(5)  # lost: current value is 5
        spins = 0
        while isinstance(op, Read):
            spins += 1
            op = gen.send(None)
        assert spins == n * n * 5
        assert isinstance(op, ReadModifyWrite)  # retries the CAS

    def test_backoff_cap_respected(self):
        gen = unbounded_method(0, n_processes=10, initial_v=0, backoff_cap=7)
        gen.send(None)
        op = gen.send(100)
        spins = 0
        while isinstance(op, Read):
            spins += 1
            op = gen.send(None)
        assert spins == 7


class TestLemma2Behaviour:
    def test_first_winner_monopolises(self):
        # Under the uniform scheduler, with overwhelming probability the
        # first winner keeps completing and everyone else starves
        # (Lemma 2: failure probability <= 2 e^{-n}).
        n = 8
        sim = Simulator(
            unbounded_lockfree(n),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_unbounded_memory(),
            rng=0,
        )
        result = sim.run(100_000)
        completions = [result.completions_of(pid) for pid in range(n)]
        winners = [pid for pid, c in enumerate(completions) if c > 0]
        assert len(winners) == 1
        assert completions[winners[0]] > 100

    def test_minimal_progress_is_maintained(self):
        # Lock-freedom: the system as a whole keeps completing.
        n = 6
        sim = Simulator(
            unbounded_lockfree(n),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_unbounded_memory(),
            rng=1,
        )
        result = sim.run(50_000)
        assert result.total_completions > 50

    def test_losers_take_steps_but_never_finish(self):
        n = 6
        sim = Simulator(
            unbounded_lockfree(n),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_unbounded_memory(),
            rng=2,
        )
        result = sim.run(50_000)
        loser_steps = [
            sim.processes[pid].steps
            for pid in range(n)
            if result.completions_of(pid) == 0
        ]
        # Losers are scheduled fairly (they spin), they just never return.
        assert all(steps > 1_000 for steps in loser_steps)
