"""Tests for the CAS-loop fetch-and-increment counter (SCU(0,1))."""

import pytest

from repro.algorithms.counter import (
    cas_counter,
    cas_counter_method,
    make_counter_memory,
)
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read


class TestMethodShape:
    def test_two_steps_when_uncontended(self):
        gen = cas_counter_method(0, "c")
        op1 = gen.send(None)
        assert isinstance(op1, Read)
        op2 = gen.send(0)  # read returned 0
        assert isinstance(op2, CAS)
        assert op2.expected == 0
        assert op2.new == 1
        with pytest.raises(StopIteration) as stop:
            gen.send(True)
        assert stop.value.value == 0  # returns the fetched value

    def test_retries_after_failed_cas(self):
        gen = cas_counter_method(0, "c")
        gen.send(None)
        gen.send(3)  # read 3
        op = gen.send(False)  # CAS failed -> re-read
        assert isinstance(op, Read)


class TestSimulatedRuns:
    def test_counter_value_equals_completions(self):
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=6,
            memory=make_counter_memory(),
            rng=0,
        )
        result = sim.run(20_000)
        assert result.memory.read("counter") == result.total_completions

    def test_every_fetched_value_unique(self):
        # Collect returned values via history; fetch-and-inc must hand out
        # each value exactly once (linearizability of the committed CASes).
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_counter_memory(),
            record_history=True,
            rng=1,
        )
        result = sim.run(8_000)
        values = [r.result for r in result.history.responses]
        assert len(values) == len(set(values))
        assert sorted(values) == list(range(len(values)))

    def test_starvation_under_adversary(self):
        # Lock-free but not wait-free: the starve adversary keeps the
        # victim from ever completing while others proceed.
        sim = Simulator(
            cas_counter(),
            AdversarialScheduler.starve(victim=0),
            n_processes=3,
            memory=make_counter_memory(),
            rng=0,
        )
        result = sim.run(30_000)
        assert result.completions_of(0) == 0
        assert result.total_completions > 0

    def test_bounded_calls(self):
        sim = Simulator(
            cas_counter(calls=3),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_counter_memory(),
            rng=0,
        )
        result = sim.run(1_000)
        assert result.stopped_early
        assert result.total_completions == 3

    def test_custom_register_name(self):
        memory = Memory()
        memory.register("shared", 10)
        sim = Simulator(
            cas_counter("shared"),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=memory,
            rng=0,
        )
        sim.run(4)
        assert memory.read("shared") == 12

    def test_make_counter_memory_initial(self):
        memory = make_counter_memory(initial=5)
        assert memory.read("counter") == 5


class TestFlattenedFactory:
    def test_trace_identical_to_repeat_method_reference(self):
        # cas_counter's generator is a hand-flattened repeat_method around
        # cas_counter_method (hot-path optimisation); traces must match.
        from repro.algorithms.counter import cas_counter_method
        from repro.sim.ops import CAS
        from repro.sim.process import repeat_method

        reference = repeat_method(
            lambda pid: cas_counter_method(pid), method="fetch_and_inc"
        )

        def drive(gen, steps):
            cas_seen = 0
            out = []
            item = gen.send(None)
            for _ in range(steps):
                out.append(item)
                if isinstance(item, CAS):
                    cas_seen += 1
                    item = gen.send(cas_seen % 2 == 0)  # fail every other
                else:
                    item = gen.send(7)
            return out

        assert drive(cas_counter()(3), 300) == drive(reference(3), 300)
