"""Tests for the augmented-CAS counter (Section 7, Algorithm 5)."""

import pytest

from repro.algorithms.augmented_counter import (
    augmented_cas_counter,
    make_augmented_counter_memory,
)
from repro.chains.counter import counter_system_latency_exact
from repro.core.latency import measure_latencies, system_latency
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator


class TestSemantics:
    def test_solo_process_completes_every_step(self):
        # Alone, every augmented CAS succeeds: one completion per step.
        sim = Simulator(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_augmented_counter_memory(),
            rng=0,
        )
        result = sim.run(10)
        assert result.total_completions == 10
        assert result.memory.read("counter") == 10

    def test_register_counts_completions(self):
        sim = Simulator(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=make_augmented_counter_memory(),
            rng=1,
        )
        result = sim.run(5_000)
        assert result.memory.read("counter") == result.total_completions

    def test_fetched_values_unique_and_dense(self):
        sim = Simulator(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=make_augmented_counter_memory(),
            record_history=True,
            rng=2,
        )
        result = sim.run(3_000)
        values = [r.result for r in result.history.responses]
        assert sorted(values) == list(range(len(values)))

    def test_loser_learns_current_value(self):
        # Round-robin n=2: p0 CASes 0->1 (success), p1 CASes 0->1 (fails,
        # learns 1), p0 CASes 1->2 (success), p1 CASes 1->2 (fail)...
        # p1 is always one behind under strict alternation: it never wins.
        sim = Simulator(
            augmented_cas_counter(),
            AdversarialScheduler.round_robin(),
            n_processes=2,
            memory=make_augmented_counter_memory(),
            rng=0,
        )
        result = sim.run(100)
        assert result.completions_of(0) == 50
        assert result.completions_of(1) == 0

    def test_calls_bound(self):
        sim = Simulator(
            augmented_cas_counter(calls=4),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_augmented_counter_memory(),
            rng=0,
        )
        result = sim.run(100)
        assert result.total_completions == 4
        assert result.stopped_early


class TestLatency:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_system_latency_matches_chain(self, n):
        m = measure_latencies(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=150_000,
            memory=make_augmented_counter_memory(),
            rng=n,
        )
        assert m.system_latency == pytest.approx(
            counter_system_latency_exact(n), rel=0.05
        )

    def test_individual_is_roughly_n_times_system(self):
        n = 6
        m = measure_latencies(
            augmented_cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=300_000,
            memory=make_augmented_counter_memory(),
            rng=0,
        )
        assert m.fairness_ratio == pytest.approx(1.0, abs=0.15)
