"""Tests for the Harris-style lock-free ordered set."""

import itertools

import pytest

from repro.algorithms.harris_set import (
    SetWorkload,
    contains_method,
    harris_set_workload,
    insert_method,
    make_set_memory,
    remove_method,
    set_contents,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator


def run_ops(memory, gen):
    result = None
    try:
        op = gen.send(None)
        while True:
            op = gen.send(memory.apply(op))
    except StopIteration as stop:
        result = stop.value
    return result


@pytest.fixture
def memory():
    return make_set_memory()


@pytest.fixture
def allocator():
    return itertools.count(2)


class TestSequentialSemantics:
    def test_insert_and_contains(self, memory, allocator):
        assert run_ops(memory, insert_method(0, 5, allocator)) is True
        assert run_ops(memory, contains_method(0, 5)) is True
        assert run_ops(memory, contains_method(0, 6)) is False

    def test_duplicate_insert_rejected(self, memory, allocator):
        run_ops(memory, insert_method(0, 5, allocator))
        assert run_ops(memory, insert_method(0, 5, allocator)) is False
        assert set_contents(memory) == [5]

    def test_sorted_order_maintained(self, memory, allocator):
        for key in (7, 3, 9, 1, 5):
            run_ops(memory, insert_method(0, key, allocator))
        assert set_contents(memory) == [1, 3, 5, 7, 9]

    def test_remove(self, memory, allocator):
        for key in (1, 2, 3):
            run_ops(memory, insert_method(0, key, allocator))
        assert run_ops(memory, remove_method(0, 2)) is True
        assert run_ops(memory, remove_method(0, 2)) is False
        assert set_contents(memory) == [1, 3]
        assert run_ops(memory, contains_method(0, 2)) is False

    def test_remove_absent(self, memory):
        assert run_ops(memory, remove_method(0, 42)) is False

    def test_remove_head_and_tail_keys(self, memory, allocator):
        run_ops(memory, insert_method(0, 0, allocator))
        run_ops(memory, insert_method(0, 100, allocator))
        assert run_ops(memory, remove_method(0, 0)) is True
        assert run_ops(memory, remove_method(0, 100)) is True
        assert set_contents(memory) == []

    def test_reinsert_after_remove(self, memory, allocator):
        run_ops(memory, insert_method(0, 5, allocator))
        run_ops(memory, remove_method(0, 5))
        assert run_ops(memory, insert_method(0, 5, allocator)) is True
        assert set_contents(memory) == [5]


class TestHelping:
    def test_search_unlinks_marked_node(self, memory, allocator):
        # Delete logically but stall before the physical unlink; a later
        # insert's search must unlink the marked node.
        run_ops(memory, insert_method(0, 5, allocator))
        gen = remove_method(0, 5)
        op = gen.send(None)
        # Drive the removal until its marking CAS has been applied but
        # stop before the physical-unlink CAS executes.
        from repro.sim.ops import CAS

        applied_mark = False
        while not applied_mark:
            result = memory.apply(op)
            if isinstance(op, CAS) and result is True and op.new[1] is True:
                applied_mark = True
            op = gen.send(result)
        # The node is marked but still physically linked.
        assert set_contents(memory) == []
        run_ops(memory, insert_method(1, 7, allocator))
        assert set_contents(memory) == [7]
        # The stalled remover finishes without error.
        try:
            while True:
                op = gen.send(memory.apply(op))
        except StopIteration as stop:
            assert stop.value is True


class TestConcurrentRuns:
    def test_results_match_final_contents(self):
        sim = Simulator(
            harris_set_workload(SetWorkload(key_range=16, seed=3)),
            UniformStochasticScheduler(),
            n_processes=5,
            memory=make_set_memory(),
            record_history=True,
            rng=4,
        )
        result = sim.run(40_000)
        # Net successful inserts minus removes per key must match the
        # final contents; pair responses with invocation arguments.
        ops = []
        responses_by_pid = {}
        for r in result.history.responses:
            responses_by_pid.setdefault(r.pid, []).append(r)
        cursors = {pid: 0 for pid in responses_by_pid}
        for inv in result.history.invocations:
            rs = responses_by_pid.get(inv.pid, [])
            c = cursors.get(inv.pid, 0)
            if c < len(rs):
                cursors[inv.pid] = c + 1
                ops.append((inv.method, inv.argument, rs[c].result))
        balance = {}
        for method, key, res in ops:
            if method == "insert" and res is True:
                balance[key] = balance.get(key, 0) + 1
            elif method == "remove" and res is True:
                balance[key] = balance.get(key, 0) - 1
        expected = sorted(k for k, v in balance.items() if v == 1)
        assert all(v in (0, 1) for v in balance.values())
        assert set_contents(result.memory) == expected

    def test_everyone_progresses(self):
        sim = Simulator(
            harris_set_workload(SetWorkload(seed=9)),
            UniformStochasticScheduler(),
            n_processes=8,
            memory=make_set_memory(),
            rng=5,
        )
        result = sim.run(60_000)
        for pid in range(8):
            assert result.completions_of(pid) > 0

    def test_contents_always_sorted_and_unique(self):
        sim = Simulator(
            harris_set_workload(SetWorkload(key_range=8, seed=11)),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=make_set_memory(),
            rng=6,
        )
        for _ in range(200):
            sim.run(100)
            contents = set_contents(sim.memory)
            assert contents == sorted(set(contents))

    def test_workload_validation(self):
        with pytest.raises(ValueError, match="at most 1"):
            harris_set_workload(SetWorkload(insert_fraction=0.8,
                                            remove_fraction=0.5))
