"""The workload registry: every zoo member through the measurement pipeline.

The acceptance bar for the registry is not "constructs" but "flows":
every registered workload must run through ``measure_latencies`` and
``latency_sweep`` on the serial and batched engines bit-identically,
checkpoint/resume bit-identically with the workload name folded into
the fingerprint, and cross process boundaries for ``parallel_sweep``.
"""

import pytest

from repro.algorithms.registry import (
    Workload,
    _REGISTRY,
    get_workload,
    iter_workloads,
    register_workload,
    workload_names,
)
from repro.core.checkpoint import CheckpointMismatchError
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.core.sweep import latency_sweep

EXPECTED_NAMES = (
    "cas-counter",
    "harris-set",
    "msqueue",
    "obstruction",
    "rtas-lock",
    "tas-lock",
    "ticket-lock",
    "treiber",
    "universal-counter",
)


class TestRegistryBasics:
    def test_expected_zoo_members(self):
        assert workload_names() == EXPECTED_NAMES

    def test_get_unknown_names_the_options(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("nope")
        assert "cas-counter" in str(excinfo.value)

    def test_iter_matches_names(self):
        assert tuple(w.name for w in iter_workloads()) == workload_names()

    def test_fingerprint_is_the_name(self):
        assert get_workload("msqueue").fingerprint == "msqueue"

    def test_duplicate_registration_refused(self):
        workload = get_workload("treiber")
        with pytest.raises(ValueError, match="already registered"):
            register_workload(workload)
        # replace=True is the explicit override.
        assert register_workload(workload, replace=True) is workload

    def test_throwaway_registration_round_trips(self):
        probe = Workload(
            "throwaway-test-only",
            get_workload("cas-counter").factory_builder,
            get_workload("cas-counter").memory_builder,
        )
        register_workload(probe)
        try:
            assert get_workload("throwaway-test-only") is probe
        finally:
            del _REGISTRY["throwaway-test-only"]

    def test_metadata_flags(self):
        assert get_workload("cas-counter").scu_shape == (0, 1)
        assert get_workload("universal-counter").scu_shape == (0, 1)
        assert get_workload("msqueue").scu_shape is None
        assert get_workload("tas-lock").blocking
        assert get_workload("ticket-lock").blocking
        assert get_workload("rtas-lock").blocking
        assert not get_workload("treiber").blocking


class TestEveryWorkloadMeasures:
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_serial_and_batched_engines_bit_identical(self, name):
        workload = get_workload(name)
        runs = [
            measure_latencies(
                workload.factory_builder(),
                UniformStochasticScheduler(),
                n_processes=3,
                steps=1_500,
                memory=workload.memory_builder(),
                rng=11,
                batched=batched,
            )
            for batched in (False, True)
        ]
        assert runs[0] == runs[1]
        assert runs[0].total_completions > 0

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_latency_sweep_checkpoint_resume_bit_identity(self, name, tmp_path):
        workload = get_workload(name)
        kwargs = dict(
            steps=400,
            repeats=2,
            seed=3,
            checkpoint=tmp_path / "cp.jsonl",
            workload=workload.fingerprint,
        )
        points = latency_sweep(
            workload.factory_builder, workload.memory_builder, [2, 3], **kwargs
        )
        resumed = latency_sweep(
            workload.factory_builder,
            workload.memory_builder,
            [2, 3],
            resume=True,
            **kwargs,
        )
        assert resumed == points

    def test_checkpoint_rejects_other_workload(self, tmp_path):
        msqueue = get_workload("msqueue")
        treiber = get_workload("treiber")
        kwargs = dict(steps=300, repeats=2, checkpoint=tmp_path / "cp.jsonl")
        latency_sweep(
            msqueue.factory_builder,
            msqueue.memory_builder,
            [2],
            workload=msqueue.fingerprint,
            **kwargs,
        )
        with pytest.raises(CheckpointMismatchError, match="workload"):
            latency_sweep(
                treiber.factory_builder,
                treiber.memory_builder,
                [2],
                workload=treiber.fingerprint,
                resume=True,
                **kwargs,
            )

    def test_workload_none_is_a_distinct_fingerprint(self, tmp_path):
        # The historical CAS-counter default (workload=None) must not
        # resume against a named-workload checkpoint, or vice versa.
        counter = get_workload("cas-counter")
        kwargs = dict(steps=300, repeats=2, checkpoint=tmp_path / "cp.jsonl")
        latency_sweep(
            counter.factory_builder,
            counter.memory_builder,
            [2],
            workload=counter.fingerprint,
            **kwargs,
        )
        with pytest.raises(CheckpointMismatchError, match="workload"):
            latency_sweep(
                counter.factory_builder,
                counter.memory_builder,
                [2],
                resume=True,
                **kwargs,
            )

    def test_parallel_sweep_matches_serial_for_registry_workload(self):
        # Registry builders are module-level callables, so they pickle
        # across parallel_sweep's process pool.
        from repro.core.sweep import parallel_sweep

        workload = get_workload("msqueue")
        kwargs = dict(steps=300, repeats=2, seed=5, batched=True)
        serial = latency_sweep(
            workload.factory_builder, workload.memory_builder, [2, 3], **kwargs
        )
        parallel = parallel_sweep(
            workload.factory_builder,
            workload.memory_builder,
            [2, 3],
            max_workers=2,
            workload=workload.fingerprint,
            **kwargs,
        )
        assert parallel == serial
