"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.scheduler import UniformStochasticScheduler


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_scheduler():
    """The paper's uniform stochastic scheduler."""
    return UniformStochasticScheduler()
