"""Property-based tests: checkpoint round-trips preserve triples exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

triples = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=0, max_value=255),
    ),
    values=st.tuples(finite, finite, finite),
    max_size=40,
)

fingerprints = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "steps": st.integers(min_value=1, max_value=10**7),
        "engine": st.sampled_from(["serial", "batched", "ensemble"]),
        "repeats": st.integers(min_value=2, max_value=64),
        "burn_in": st.one_of(
            st.none(), st.integers(min_value=0, max_value=10**6)
        ),
        "n_values": st.lists(
            st.integers(min_value=1, max_value=1024),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    }
)


@settings(max_examples=50, deadline=None)
@given(triples, fingerprints)
def test_round_trip_preserves_triples_exactly(tmp_path_factory, data, fields):
    # Bit-exact floats through JSON: Python's json writes repr(float),
    # which round-trips every finite double exactly.
    path = tmp_path_factory.mktemp("ckpt") / "cp.jsonl"
    fingerprint = sweep_fingerprint(crash_times=None, **fields)
    with SweepCheckpoint.open(path, fingerprint) as checkpoint:
        for (n, r), triple in data.items():
            checkpoint.record(n, r, triple)
    reopened = SweepCheckpoint.open(path, fingerprint, resume=True)
    try:
        assert reopened.completed == data
        assert reopened.fingerprint == fingerprint
    finally:
        reopened.close()


@settings(max_examples=50, deadline=None)
@given(triples)
def test_load_completed_matches_open(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("ckpt") / "cp.jsonl"
    fingerprint = sweep_fingerprint(
        seed=0,
        steps=100,
        engine="batched",
        n_values=[2],
        repeats=2,
        burn_in=None,
    )
    with SweepCheckpoint.open(path, fingerprint) as checkpoint:
        for (n, r), triple in data.items():
            checkpoint.record(n, r, triple)
    assert SweepCheckpoint.load_completed(path) == data


# -- corruption robustness -------------------------------------------------
#
# Whatever a crash, a flaky disk, or an editor does to the journal, a
# resume either succeeds (torn-tail repair) or raises CheckpointError —
# never an uncaught KeyError/IndexError/JSONDecodeError.  (That was the
# _read bug: record["v"][2] was indexed before validation.)

from repro.core.checkpoint import CheckpointError  # noqa: E402
from repro.core.store import ColumnarSweepStore  # noqa: E402

FINGERPRINT = sweep_fingerprint(
    seed=0,
    steps=100,
    engine="batched",
    n_values=[2, 4],
    repeats=4,
    burn_in=None,
    crash_times=None,
)


def _journal_bytes(tmp_path_factory, data) -> tuple:
    path = tmp_path_factory.mktemp("ckpt") / "cp.jsonl"
    with SweepCheckpoint.open(path, FINGERPRINT) as checkpoint:
        for (n, r), triple in data.items():
            checkpoint.record(n, r, triple)
    return path, path.read_bytes()


def _assert_load_is_contained(path):
    try:
        completed = SweepCheckpoint.load_completed(path)
    except CheckpointError:
        return
    assert isinstance(completed, dict)
    # Resume-open agrees with the standalone loader on mutated input.
    reopened = SweepCheckpoint.open(
        path, SweepCheckpoint.load_fingerprint(path), resume=True
    )
    try:
        assert reopened.completed == completed
    finally:
        reopened.close()


@settings(max_examples=60, deadline=None)
@given(triples, st.data())
def test_truncated_journal_never_raises_uncaught(
    tmp_path_factory, data, draw
):
    path, original = _journal_bytes(tmp_path_factory, data)
    cut = draw.draw(st.integers(min_value=0, max_value=len(original)))
    path.write_bytes(original[:cut])
    _assert_load_is_contained(path)


@settings(max_examples=60, deadline=None)
@given(triples, st.data())
def test_byte_flipped_journal_never_raises_uncaught(
    tmp_path_factory, data, draw
):
    path, original = _journal_bytes(tmp_path_factory, data)
    mutated = bytearray(original)
    position = draw.draw(
        st.integers(min_value=0, max_value=max(0, len(mutated) - 1))
    )
    flip = draw.draw(st.integers(min_value=1, max_value=255))
    if mutated:
        mutated[position] ^= flip
    path.write_bytes(bytes(mutated))
    _assert_load_is_contained(path)


@settings(max_examples=60, deadline=None)
@given(triples, st.data())
def test_injected_lines_and_bytes_never_raise_uncaught(
    tmp_path_factory, data, draw
):
    path, original = _journal_bytes(tmp_path_factory, data)
    injected = draw.draw(
        st.binary(min_size=1, max_size=64).map(
            lambda b: b.replace(b"\r", b" ")
        )
    )
    position = draw.draw(st.integers(min_value=0, max_value=len(original)))
    as_line = draw.draw(st.booleans())
    if as_line:
        # Inject a whole garbage line at a line boundary.
        lines = original.split(b"\n")
        index = draw.draw(st.integers(min_value=0, max_value=len(lines)))
        lines.insert(index, injected.replace(b"\n", b" "))
        mutated = b"\n".join(lines)
    else:
        mutated = original[:position] + injected + original[position:]
    path.write_bytes(mutated)
    _assert_load_is_contained(path)


@settings(max_examples=40, deadline=None)
@given(triples, st.data())
def test_store_tail_and_chunk_corruption_never_raises_uncaught(
    tmp_path_factory, data, draw
):
    # The columnar store has three corruptible files: header.json, the
    # npz chunks, and the write-ahead tail.  Mutate one at random.
    root = tmp_path_factory.mktemp("store") / "store"
    with ColumnarSweepStore.open(root, FINGERPRINT, compact_every=5) as store:
        for (n, r), triple in data.items():
            store.record(n, r, triple)
    targets = sorted(p for p in root.iterdir() if p.is_file())
    target = targets[
        draw.draw(st.integers(min_value=0, max_value=len(targets) - 1))
    ]
    original = target.read_bytes()
    mode = draw.draw(st.sampled_from(["truncate", "flip", "inject"]))
    if mode == "truncate":
        cut = draw.draw(st.integers(min_value=0, max_value=len(original)))
        mutated = original[:cut]
    elif mode == "flip" and original:
        position = draw.draw(
            st.integers(min_value=0, max_value=len(original) - 1)
        )
        flip = draw.draw(st.integers(min_value=1, max_value=255))
        mutated = bytearray(original)
        mutated[position] ^= flip
        mutated = bytes(mutated)
    else:
        injected = draw.draw(st.binary(min_size=1, max_size=64))
        position = draw.draw(
            st.integers(min_value=0, max_value=len(original))
        )
        mutated = original[:position] + injected + original[position:]
    target.write_bytes(mutated)
    try:
        completed = ColumnarSweepStore.load_completed(root)
    except CheckpointError:
        return
    assert isinstance(completed, dict)
