"""Property-based tests: checkpoint round-trips preserve triples exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

triples = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=0, max_value=255),
    ),
    values=st.tuples(finite, finite, finite),
    max_size=40,
)

fingerprints = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "steps": st.integers(min_value=1, max_value=10**7),
        "engine": st.sampled_from(["serial", "batched", "ensemble"]),
        "repeats": st.integers(min_value=2, max_value=64),
        "burn_in": st.one_of(
            st.none(), st.integers(min_value=0, max_value=10**6)
        ),
        "n_values": st.lists(
            st.integers(min_value=1, max_value=1024),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    }
)


@settings(max_examples=50, deadline=None)
@given(triples, fingerprints)
def test_round_trip_preserves_triples_exactly(tmp_path_factory, data, fields):
    # Bit-exact floats through JSON: Python's json writes repr(float),
    # which round-trips every finite double exactly.
    path = tmp_path_factory.mktemp("ckpt") / "cp.jsonl"
    fingerprint = sweep_fingerprint(crash_times=None, **fields)
    with SweepCheckpoint.open(path, fingerprint) as checkpoint:
        for (n, r), triple in data.items():
            checkpoint.record(n, r, triple)
    reopened = SweepCheckpoint.open(path, fingerprint, resume=True)
    try:
        assert reopened.completed == data
        assert reopened.fingerprint == fingerprint
    finally:
        reopened.close()


@settings(max_examples=50, deadline=None)
@given(triples)
def test_load_completed_matches_open(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("ckpt") / "cp.jsonl"
    fingerprint = sweep_fingerprint(
        seed=0,
        steps=100,
        engine="batched",
        n_values=[2],
        repeats=2,
        burn_in=None,
    )
    with SweepCheckpoint.open(path, fingerprint) as checkpoint:
        for (n, r), triple in data.items():
            checkpoint.record(n, r, triple)
    assert SweepCheckpoint.load_completed(path) == data
