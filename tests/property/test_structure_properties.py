"""Property-based tests for the concurrent data structures: any schedule,
any interleaving, the sequential semantics must hold."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.msqueue import (
    EMPTY as Q_EMPTY,
    dequeue_method,
    enqueue_method,
    make_queue_memory,
    queue_contents,
)
from repro.algorithms.treiber import (
    EMPTY as S_EMPTY,
    make_stack_memory,
    pop_method,
    push_method,
    stack_contents,
)
from repro.core.scheduler import AdversarialScheduler
from repro.sim.executor import Simulator
from repro.sim.process import Completion, Invoke


def scripted_factory(script, make_call):
    """A process that runs a fixed script of operations, then stops."""

    def factory(pid):
        for op_index, op in enumerate(script):
            yield Invoke(str(op[0]))
            result = yield from make_call(pid, op_index, op)
            yield Completion(result, str(op[0]))

    return factory


stack_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("pop")),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(stack_ops, stack_ops, st.randoms(use_true_random=False))
def test_stack_conservation_under_random_schedules(script0, script1, pyrandom):
    """Under any interleaving: no value duplicated, none lost."""

    def make_call(pid, op_index, op):
        if op[0] == "push":
            return push_method(pid, (pid, op_index, op[1]))
        return pop_method(pid)

    order = []

    def strategy(time, active):
        return pyrandom.choice(active)

    sim = Simulator(
        [scripted_factory(script0, make_call), scripted_factory(script1, make_call)],
        AdversarialScheduler(strategy),
        memory=make_stack_memory(),
        record_history=True,
    )
    result = sim.run(10_000)
    pushed = [r.result for r in result.history.responses if r.method == "push"]
    popped = [
        r.result
        for r in result.history.responses
        if r.method == "pop" and r.result is not S_EMPTY
    ]
    remaining = stack_contents(result.memory)
    assert len(set(popped)) == len(popped)
    assert sorted(popped + remaining) == sorted(pushed)


queue_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("deq")),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(queue_ops, queue_ops, st.randoms(use_true_random=False))
def test_queue_conservation_and_fifo(script0, script1, pyrandom):
    ids = itertools.count(1)

    def make_call(pid, op_index, op):
        if op[0] == "enq":
            return enqueue_method(pid, next(ids), (pid, op_index))
        return dequeue_method(pid)

    def strategy(time, active):
        return pyrandom.choice(active)

    sim = Simulator(
        [scripted_factory(script0, make_call), scripted_factory(script1, make_call)],
        AdversarialScheduler(strategy),
        memory=make_queue_memory(),
        record_history=True,
    )
    result = sim.run(10_000)
    enqueued = [
        r.result for r in result.history.responses if r.method == "enq"
    ]
    dequeued = [
        r.result
        for r in result.history.responses
        if r.method == "deq" and r.result is not Q_EMPTY
    ]
    remaining = queue_contents(result.memory)
    # No duplicates among dequeued values.
    assert len(set(dequeued)) == len(dequeued)
    # Per-producer FIFO.
    for pid in (0, 1):
        seqs = [k for p, k in dequeued if p == pid]
        assert seqs == sorted(seqs)
    # Conservation: dequeued + remaining covers all *completed* enqueues
    # (a linked-but-uncompleted enqueue may add an extra element).
    assert set(enqueued) <= set(dequeued) | set(remaining)
