"""Property-based tests for the balls-into-bins game invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ballsbins.game import BallsGame
from repro.chains.scu import scu_system_chain


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=2_000),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ball_counts_stay_in_range(n, throws, seed):
    """At all times bins hold 0, 1 or 2 balls between throws (3 only
    transiently at a reset), and a + b + (two-ball bins) == n."""
    game = BallsGame(n, rng=seed)
    for _ in range(throws):
        game.throw()
        assert game.balls.min() >= 0
        assert game.balls.max() <= 2
        two = int(np.count_nonzero(game.balls == 2))
        assert game.a + game.b + two == n


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_phase_records_are_consistent(n, phases, seed):
    game = BallsGame(n, rng=seed)
    records = [game.run_phase() for _ in range(phases)]
    for record in records:
        assert record.a + record.b == n or record.index == 0
        assert record.length >= 1
        assert 0 <= record.winner < n
    assert [r.index for r in records] == list(range(phases))
    assert game.resets == phases


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_game_states_exist_in_system_chain(n, seed):
    """Every (a, b) configuration the game visits at a phase start is a
    state of the scan-validate system chain (the game IS the chain)."""
    chain = scu_system_chain(n)
    game = BallsGame(n, rng=seed)
    for _ in range(20):
        record = game.run_phase()
        assert (record.a, record.b) in chain


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=999))
def test_phase_start_has_no_two_ball_bins(n, seed):
    game = BallsGame(n, rng=seed)
    game.run_phase()
    assert int(np.count_nonzero(game.balls == 2)) == 0
