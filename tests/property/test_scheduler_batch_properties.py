"""Property test: ``select_batch`` is exactly ``size`` sequential selects.

The batched-execution contract (see ``Scheduler.select_batch``) demands,
for a fixed active set: the same pids in the same order *and* the same
RNG word consumption as sequential ``select`` calls, plus
``state_snapshot``/``state_restore`` sufficient to rewind a block that
was cut short and replay only its consumed prefix.  This file checks
the full contract for every shipped scheduler family — including the
contention adversary and the epsilon departure dial — under shrinking
active sets (hypothesis draws arbitrary non-empty pid subsets, the
post-crash shapes the executor produces).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    AdversarialScheduler,
    ContentionScheduler,
    DistributionScheduler,
    EpsilonUniformScheduler,
    HardwareLikeScheduler,
    LotteryScheduler,
    MarkovModulatedScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)

N_TOTAL = 8


def _skewed_weights(variant: int) -> np.ndarray:
    return np.random.default_rng(variant).uniform(0.5, 3.0, N_TOTAL)


def _uniform_pi(time, active):
    share = 1.0 / len(active)
    return {pid: share for pid in active}


FAMILY_BUILDERS = {
    "uniform": lambda variant: UniformStochasticScheduler(),
    "skewed": lambda variant: SkewedStochasticScheduler(_skewed_weights(variant)),
    "lottery": lambda variant: LotteryScheduler(
        [1 + (variant + k) % 5 for k in range(N_TOTAL)]
    ),
    "distribution": lambda variant: DistributionScheduler(_uniform_pi),
    "adversarial-round-robin": lambda variant: AdversarialScheduler.round_robin(),
    "adversarial-starve": lambda variant: AdversarialScheduler.starve(
        variant % N_TOTAL
    ),
    "adversarial-spoiler": lambda variant: AdversarialScheduler.alternating_spoiler(
        variant % N_TOTAL
    ),
    "markov": lambda variant: MarkovModulatedScheduler(
        slowdown=2.0 + variant % 3, mean_dwell=5.0
    ),
    "hardware": lambda variant: HardwareLikeScheduler(
        mean_quantum=1.5 + 0.5 * (variant % 3)
    ),
    "epsilon": lambda variant: EpsilonUniformScheduler(
        0.1 * (variant % 10), favored=variant % N_TOTAL
    ),
    "contention": lambda variant: ContentionScheduler(focus=2.0 + variant % 4),
}


def _make(family: str, variant: int):
    scheduler = FAMILY_BUILDERS[family](variant)
    if family == "contention":
        # The contention set only ever changes through the executor's
        # observe_pending hook, never inside select — feed a varied
        # pending map so the block runs with non-trivial weights.
        registers = ["top", "counter", None]
        draws = np.random.default_rng(variant).integers(3, size=N_TOTAL)
        scheduler.observe_pending(
            {pid: registers[draws[pid]] for pid in range(N_TOTAL)}
        )
    return scheduler


@pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
@settings(max_examples=25, deadline=None)
@given(
    variant=st.integers(min_value=0, max_value=11),
    active=st.lists(
        st.integers(min_value=0, max_value=N_TOTAL - 1),
        min_size=1,
        max_size=N_TOTAL,
        unique=True,
    ).map(sorted),
    size=st.integers(min_value=1, max_value=12),
    prefix=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_select_batch_is_sequential_select(
    family, variant, active, size, prefix, seed
):
    consumed = min(prefix, size)

    batch_sched = _make(family, variant)
    seq_sched = _make(family, variant)
    batch_rng = np.random.default_rng(seed)
    seq_rng = np.random.default_rng(seed)

    rng_state = batch_rng.bit_generator.state
    snapshot = batch_sched.state_snapshot()

    batch = batch_sched.select_batch(0, active, batch_rng, size)
    sequential = [seq_sched.select(t, active, seq_rng) for t in range(size)]

    assert list(batch) == sequential
    assert batch_rng.bit_generator.state == seq_rng.bit_generator.state
    assert batch_sched.state_snapshot() == seq_sched.state_snapshot()

    # The run_batched rewind: a block cut short restores the pre-block
    # snapshot and replays exactly the consumed prefix.  Afterwards the
    # scheduler and RNG must sit precisely where a sequential run of
    # `consumed` selects would have left them.
    batch_sched.state_restore(snapshot)
    batch_rng.bit_generator.state = rng_state
    if consumed:
        replay = batch_sched.select_batch(0, active, batch_rng, consumed)
        assert list(replay) == sequential[:consumed]
    reference = _make(family, variant)
    reference_rng = np.random.default_rng(seed)
    for t in range(consumed):
        reference.select(t, active, reference_rng)
    assert batch_rng.bit_generator.state == reference_rng.bit_generator.state
    assert batch_sched.state_snapshot() == reference.state_snapshot()
