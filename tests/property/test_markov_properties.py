"""Property-based tests for the Markov substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.chain import MarkovChain
from repro.markov.hitting import expected_return_time
from repro.markov.lifting import collapse_chain, ergodic_flow_matrix
from repro.markov.properties import is_irreducible
from repro.markov.stationary import stationary_distribution


@st.composite
def ergodic_chains(draw, max_states=8):
    """Random dense chains with strictly positive entries (ergodic)."""
    k = draw(st.integers(min_value=2, max_value=max_states))
    rows = []
    for _ in range(k):
        row = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=k,
                max_size=k,
            )
        )
        rows.append(row)
    mat = np.array(rows)
    mat /= mat.sum(axis=1, keepdims=True)
    return MarkovChain(mat)


@settings(max_examples=40, deadline=None)
@given(ergodic_chains())
def test_stationary_is_invariant_and_normalised(chain):
    pi = stationary_distribution(chain)
    assert pi.shape == (chain.n_states,)
    assert pi.sum() == pytest.approx(1.0)
    assert np.all(pi >= -1e-12)
    assert np.allclose(pi @ chain.dense(), pi, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(ergodic_chains())
def test_flow_conservation(chain):
    flows = ergodic_flow_matrix(chain)
    assert np.allclose(flows.sum(axis=0), flows.sum(axis=1), atol=1e-9)
    assert flows.sum() == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(ergodic_chains())
def test_return_time_identity(chain):
    # Theorem 1: h_ii = 1 / pi_i for every state.
    pi = stationary_distribution(chain)
    state = chain.states[0]
    assert expected_return_time(chain, state) == pytest.approx(
        1.0 / pi[0], rel=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(ergodic_chains(max_states=6), st.integers(min_value=2, max_value=3))
def test_any_collapse_of_positive_chain_is_stochastic(chain, groups):
    # collapse_chain produces a valid chain for arbitrary mappings, and the
    # pushed-forward stationary distribution is stationary for it.
    mapping = lambda s: s % groups
    coarse = collapse_chain(chain, mapping)
    dense = coarse.dense()
    assert np.allclose(dense.sum(axis=1), 1.0)
    fine_pi = stationary_distribution(chain)
    pushed = np.zeros(coarse.n_states)
    for idx, state in enumerate(chain.states):
        pushed[coarse.index_of(mapping(state))] += fine_pi[idx]
    assert np.allclose(pushed @ dense, pushed, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(ergodic_chains())
def test_positive_chains_are_irreducible(chain):
    assert is_irreducible(chain)
