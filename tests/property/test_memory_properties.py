"""Property-based tests for the shared-memory semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.memory import Memory
from repro.sim.ops import CAS, FetchAndIncrement, Read, Write, augmented_cas

values = st.one_of(st.integers(), st.text(max_size=5), st.none())


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["read", "write", "cas", "fai"]),
                          st.integers(min_value=-5, max_value=5),
                          st.integers(min_value=-5, max_value=5)),
                max_size=50))
def test_memory_matches_reference_model(script):
    """The register behaves exactly like a plain Python variable under a
    sequential op stream (atomicity is the executor's job)."""
    memory = Memory()
    memory.register("r", 0)
    model = 0
    for kind, a, b in script:
        if kind == "read":
            assert memory.apply(Read("r")) == model
        elif kind == "write":
            memory.apply(Write("r", a))
            model = a
        elif kind == "cas":
            result = memory.apply(CAS("r", a, b))
            assert result == (model == a)
            if result:
                model = b
        elif kind == "fai":
            assert memory.apply(FetchAndIncrement("r")) == model
            model += 1
    assert memory.read("r") == model


@settings(max_examples=100, deadline=None)
@given(st.integers(), st.integers(), st.integers())
def test_augmented_cas_always_returns_previous(current, expected, new):
    memory = Memory()
    memory.register("r", current)
    result = memory.apply(augmented_cas("r", expected, new))
    assert result == current
    if current == expected:
        assert memory.read("r") == new
    else:
        assert memory.read("r") == current


@settings(max_examples=50, deadline=None)
@given(st.lists(values, max_size=20))
def test_write_read_round_trip(writes):
    memory = Memory()
    for value in writes:
        memory.apply(Write("r", value))
        assert memory.apply(Read("r")) == value


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30))
def test_access_counters_total(ops):
    memory = Memory()
    memory.register("r", 0)
    for op in ops:
        memory.apply(
            [Read("r"), Write("r", 1), CAS("r", 0, 1), FetchAndIncrement("r")][op]
        )
    reg = memory["r"]
    assert reg.reads + reg.writes + reg.cas_attempts + reg.rmws == len(ops)
    assert memory.total_operations == len(ops)
