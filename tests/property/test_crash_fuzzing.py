"""Property-based crash fuzzing: non-blocking algorithms survive any
crash pattern with consistent state and continued progress."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.treiber import (
    EMPTY,
    TreiberWorkload,
    make_stack_memory,
    stack_contents,
    treiber_workload,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator

crash_patterns = st.dictionaries(
    keys=st.integers(min_value=0, max_value=5),
    values=st.integers(min_value=1, max_value=5_000),
    max_size=5,  # never crash everyone
)


@settings(max_examples=40, deadline=None)
@given(crash_patterns, st.integers(min_value=0, max_value=2**31 - 1))
def test_counter_consistent_under_any_crash_pattern(crash_times, seed):
    n = 6
    sim = Simulator(
        cas_counter(),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=make_counter_memory(),
        crash_times=crash_times,
        rng=seed,
    )
    result = sim.run(12_000)
    # Safety: the register equals the number of completed operations
    # plus at most the number of crashed processes (a process may crash
    # after its CAS took effect at the same step it completed... it
    # cannot: completion is recorded at the CAS step itself).
    assert result.memory.read("counter") == result.total_completions
    # Liveness: every surviving process keeps completing.
    survivors = [p for p in range(n) if p not in crash_times]
    for pid in survivors:
        assert result.completions_of(pid) > 0


@settings(max_examples=25, deadline=None)
@given(crash_patterns, st.integers(min_value=0, max_value=2**31 - 1))
def test_stack_conservation_under_any_crash_pattern(crash_times, seed):
    n = 6
    sim = Simulator(
        treiber_workload(TreiberWorkload(push_fraction=0.6, seed=seed % 1000)),
        UniformStochasticScheduler(),
        n_processes=n,
        memory=make_stack_memory(),
        crash_times=crash_times,
        record_history=True,
        rng=seed,
    )
    result = sim.run(8_000)
    pushed = [r.result for r in result.history.responses if r.method == "push"]
    popped = [
        r.result
        for r in result.history.responses
        if r.method == "pop" and r.result is not EMPTY
    ]
    remaining = stack_contents(result.memory)
    # No duplication, no loss — crashes cannot corrupt the structure.
    assert len(set(popped)) == len(popped)
    assert set(popped) | set(remaining) >= set(pushed)
