"""FIG5 — Figure 5: completion rate of the CAS fetch-and-increment
counter vs. the model's Theta(1/sqrt(n)) prediction vs. the 1/n worst
case, for varying thread counts.

As in the paper, the prediction curve is scaled to the first measured
point.  We add a fourth series the paper could not show: the *exact*
stationary rate from the system chain, which the measured curve should
sit on almost exactly.

All thread counts run as one heterogeneous ensemble
(:class:`repro.sim.EnsembleSimulator`) — bit-identical to the per-``n``
batched runs this benchmark used previously, with the same seeds.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.chains.scu import scu_system_latency_exact
from repro.core.analysis import (
    completion_rate_prediction,
    worst_case_completion_rate,
)
from repro.core.latency import resolve_vector_kernel
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim import EnsembleReplicate, EnsembleSimulator
from repro.stats.estimators import fit_power_law

THREAD_COUNTS = [2, 4, 8, 12, 16, 20, 28, 40]
STEPS = 120_000


def reproduce_figure5():
    kernel = resolve_vector_kernel(cas_counter())
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                kernel,
                n,
                UniformStochasticScheduler(),
                make_counter_memory(),
                rng=n,
            )
            for n in THREAD_COUNTS
        ]
    )
    measurements = ensemble.run(STEPS).measurements()
    measured = np.array([m.completion_rate for m in measurements])
    predicted = completion_rate_prediction(THREAD_COUNTS, measured_first=measured[0])
    worst = worst_case_completion_rate(THREAD_COUNTS)
    exact = np.array([1.0 / scu_system_latency_exact(n) for n in THREAD_COUNTS])
    return measured, predicted, worst, exact


def test_fig5_completion_rate(run_once, benchmark):
    measured, predicted, worst, exact = run_once(benchmark, reproduce_figure5)

    experiment = Experiment(
        exp_id="FIG5",
        title="Completion rate of the lock-free counter vs thread count",
        paper_claim="the Theta(1/sqrt(n)) rate predicted by the uniform "
        "stochastic scheduler model is close to the actual completion "
        "rate, far above the 1/n worst case",
    )
    experiment.headers = [
        "threads",
        "measured",
        "prediction(scaled 1/sqrt n)",
        "exact chain",
        "worst case 1/n",
    ]
    for i, n in enumerate(THREAD_COUNTS):
        experiment.add_row(n, measured[i], predicted[i], exact[i], worst[i])
    exponent, _ = fit_power_law(THREAD_COUNTS, measured)
    experiment.add_note(f"fitted scaling exponent of the measured rate: {exponent:.3f} "
                        "(model predicts -0.5; worst case would be -1)")
    experiment.report()

    assert np.all(np.abs(exact - measured) / exact < 0.1)
    # The advantage over the worst case grows like sqrt(n): modest at
    # n = 8 (~1.45x), a factor 3+ by n = 40.
    gaps = measured / worst
    assert np.all(np.diff(gaps) > 0)
    assert gaps[-1] > 3.0
    assert -0.62 < exponent < -0.38
