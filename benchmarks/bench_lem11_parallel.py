"""LEM11 — Lemma 11: parallel code has system latency exactly q and
individual latency exactly nq.

Exact chain computation plus simulation across a (q, n) grid.
"""

import numpy as np

from repro.algorithms.parallel import parallel_code
from repro.bench.harness import Experiment
from repro.chains.parallel import (
    parallel_individual_latency_exact,
    parallel_system_latency_exact,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler

GRID = [(2, 3), (4, 3), (3, 5), (6, 4)]
STEPS = 120_000


def reproduce_lemma11():
    rows = []
    for q, n in GRID:
        exact_w = parallel_system_latency_exact(n, q)
        exact_wi = parallel_individual_latency_exact(n, q)
        m = measure_latencies(
            parallel_code(q),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=STEPS,
            rng=(q, n),
        )
        rows.append(
            (q, n, exact_w, m.system_latency, exact_wi, m.mean_individual_latency)
        )
    return rows


def test_lem11_parallel_code(run_once, benchmark):
    rows = run_once(benchmark, reproduce_lemma11)

    experiment = Experiment(
        exp_id="LEM11",
        title="Parallel code: W = q and W_i = n q, exactly",
        paper_claim="the individual chain is doubly stochastic, so its "
        "stationary distribution is uniform; latencies follow exactly",
    )
    experiment.headers = [
        "q",
        "n",
        "exact W",
        "simulated W",
        "exact W_i",
        "simulated W_i",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for q, n, exact_w, sim_w, exact_wi, sim_wi in rows:
        assert exact_w == np.clip(exact_w, q - 1e-9, q + 1e-9)
        assert exact_wi == np.clip(exact_wi, n * q - 1e-6, n * q + 1e-6)
        assert abs(sim_w - q) / q < 0.02
        assert abs(sim_wi - n * q) / (n * q) < 0.05


def test_lem11_exact_kernel(benchmark):
    """Micro-benchmark: exact latencies for q=5, n=4."""
    result = benchmark(parallel_system_latency_exact, 4, 5)
    assert result == np.clip(result, 4.999, 5.001)
