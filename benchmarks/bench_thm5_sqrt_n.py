"""THM5 — Theorem 5: the scan-validate component's system latency is
Theta(sqrt(n)).

We compute the *exact* stationary latency from the system chain across
two decades of n and fit the scaling exponent; simulation spot-checks
two points.  The bound is asymptotically tight, so the exponent must be
0.5 and the constant W / sqrt(n) must stabilise.
"""

import numpy as np

from repro.bench.harness import Experiment
from repro.chains.scu import scu_system_latency_exact
from repro.core.scu import SCU
from repro.stats.estimators import fit_power_law

N_VALUES = [4, 8, 16, 32, 64, 128, 256, 512]


def reproduce_theorem5():
    from repro.core.latency import resolve_vector_kernel
    from repro.core.scheduler import UniformStochasticScheduler
    from repro.sim import EnsembleReplicate, EnsembleSimulator

    exact = [scu_system_latency_exact(n) for n in N_VALUES]
    # Both spot-checks run as one ensemble — bit-identical to the
    # per-n batched runs, with the same seeds.
    spot = (16, 128)
    spec = SCU(0, 1)
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                resolve_vector_kernel(spec.factory()),
                n,
                UniformStochasticScheduler(),
                spec.memory(),
                rng=n,
            )
            for n in spot
        ]
    )
    measurements = ensemble.run(150_000).measurements()
    simulated = {n: m.system_latency for n, m in zip(spot, measurements)}
    return exact, simulated


def test_thm5_sqrt_n_latency(run_once, benchmark):
    exact, simulated = run_once(benchmark, reproduce_theorem5)

    experiment = Experiment(
        exp_id="THM5",
        title="Scan-validate system latency scales as sqrt(n)",
        paper_claim="expected steps between successes is O(sqrt(n)), "
        "asymptotically tight",
    )
    experiment.headers = ["n", "exact W", "W / sqrt(n)", "simulated W"]
    for n, w in zip(N_VALUES, exact):
        experiment.add_row(n, w, w / np.sqrt(n), simulated.get(n, float("nan")))
    exponent, coeff = fit_power_law(N_VALUES, exact)
    experiment.add_note(
        f"fitted W ~ {coeff:.3f} * n^{exponent:.3f} (theory: exponent 0.5)"
    )
    experiment.report()

    assert 0.42 < exponent < 0.55
    constants = np.array(exact) / np.sqrt(N_VALUES)
    assert constants[-4:].max() / constants[-4:].min() < 1.06
    for n, w in simulated.items():
        assert w == np.clip(w, 0.95 * scu_system_latency_exact(n),
                            1.05 * scu_system_latency_exact(n))


def test_thm5_exact_solver_kernel(benchmark):
    """Micro-benchmark: sparse stationary solve of the n=128 system chain."""
    result = benchmark(scu_system_latency_exact, 128)
    assert result > 10
