"""EXT1 — Extension: exact latencies under non-uniform stochastic
schedulers (the Section 8 open question).

For n = 4 we solve the full weighted individual chain while one
process's scheduling weight shrinks, and cross-check one point against
simulation.  No lifting exists here (the chain loses its symmetry), so
this is genuinely beyond the paper's machinery — exactly the direction
its Discussion proposes.
"""

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.chains.weighted import scu_weighted_latencies
from repro.core.latency import measure_latencies
from repro.core.scheduler import SkewedStochasticScheduler

N = 4
SLOW_WEIGHTS = [1.0, 0.75, 0.5, 0.25, 0.1]


def reproduce_weighted():
    rows = []
    for slow in SLOW_WEIGHTS:
        weights = [1.0] * (N - 1) + [slow]
        w_system, individual = scu_weighted_latencies(weights)
        rows.append(
            (slow, w_system, individual[0], individual[N - 1],
             individual[N - 1] / individual[0])
        )
    weights = [1.0, 1.0, 1.0, 0.5]
    m = measure_latencies(
        cas_counter(),
        SkewedStochasticScheduler(weights),
        n_processes=N,
        steps=400_000,
        memory=make_counter_memory(),
        rng=0,
    )
    simulated = (m.system_latency, m.individual[3])
    return rows, simulated


def test_ext1_weighted_scheduler(run_once, benchmark):
    rows, simulated = run_once(benchmark, reproduce_weighted)

    experiment = Experiment(
        exp_id="EXT1",
        title="Exact latencies under non-uniform stochastic schedulers",
        paper_claim="(open question, Section 8) can the framework handle "
        "non-uniform schedulers?  For small n, exactly",
    )
    experiment.headers = [
        "slow process weight",
        "system W",
        "fast W_i",
        "slow W_i",
        "slow/fast",
    ]
    for row in rows:
        experiment.add_row(*row)
    w_exact = next(r for r in rows if r[0] == 0.5)
    experiment.add_note(
        f"cross-check at weight 0.5: simulated system W "
        f"{simulated[0]:.3f} (exact {w_exact[1]:.3f}), simulated slow W_i "
        f"{simulated[1]:.1f} (exact {w_exact[3]:.1f})"
    )
    experiment.add_note(
        "system latency is ROBUST to skew (it even drops: fast processes "
        "fill the gap) while the slow process pays super-linearly — its "
        "rarer CAS attempts are likelier to be invalidated"
    )
    experiment.report()

    # System latency robust: varies < 12% across the whole sweep.
    systems = [r[1] for r in rows]
    assert max(systems) / min(systems) < 1.12
    # Individual penalty super-linear: at half weight, > 2.5x the latency.
    half = next(r for r in rows if r[0] == 0.5)
    base = rows[0]
    assert half[3] > 2.5 * base[3]
    # Simulation matches the exact chain.
    assert abs(simulated[0] - w_exact[1]) / w_exact[1] < 0.05
    assert abs(simulated[1] - w_exact[3]) / w_exact[3] < 0.10
