"""COR2 — Corollary 2: with only k correct processes, latencies are
governed by k.

We crash n - k of n processes early and compare the post-crash
stationary latency with the k-process exact value.  All four crash
configurations run together on the ensemble engine (segmented
whole-schedule execution); each replicate is bit-identical to the
``Simulator.run_batched`` run with the same seed, so the reported
numbers are unchanged from the batched-engine version of this
experiment.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import resolve_vector_kernel, system_latency
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim import EnsembleReplicate, EnsembleSimulator

N = 32
K_VALUES = [4, 8, 16, 32]
STEPS = 250_000
CRASH_AT = 2_000


def reproduce_corollary2():
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                resolve_vector_kernel(cas_counter()),
                N,
                UniformStochasticScheduler(),
                make_counter_memory(),
                rng=k,
                crash_times={pid: CRASH_AT for pid in range(k, N)},
            )
            for k in K_VALUES
        ]
    )
    result = ensemble.run(STEPS)
    rows = []
    for k, outcome in zip(K_VALUES, result):
        recorder = outcome.recorder()
        measured = system_latency(recorder, burn_in=CRASH_AT * 10)
        rows.append((N, k, measured, scu_system_latency_exact(k)))
    return rows


def test_cor2_crash_latency(run_once, benchmark):
    rows = run_once(benchmark, reproduce_corollary2)

    experiment = Experiment(
        exp_id="COR2",
        title="Latency with k correct processes out of n",
        paper_claim="system latency O(q + s sqrt(k)): at infinity only the "
        "correct processes matter",
    )
    experiment.headers = [
        "n",
        "k correct",
        "measured W after crashes",
        "exact W for k processes",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for _, k, measured, exact in rows:
        assert abs(measured - exact) / exact < 0.08
    # Monotone in k: fewer survivors, faster completions.
    latencies = [row[2] for row in rows]
    assert latencies == sorted(latencies)
