"""COR2 — Corollary 2: with only k correct processes, latencies are
governed by k.

We crash n - k of n processes early and compare the post-crash
stationary latency with the k-process exact value.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import system_latency
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator

N = 32
K_VALUES = [4, 8, 16, 32]
STEPS = 250_000
CRASH_AT = 2_000


def reproduce_corollary2():
    rows = []
    for k in K_VALUES:
        crash_times = {pid: CRASH_AT for pid in range(k, N)}
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=N,
            memory=make_counter_memory(),
            crash_times=crash_times,
            rng=k,
        )
        # Crash experiments stay on the batched engine: the ensemble
        # engine is crash-free by design (it rejects crash_times).
        result = sim.run_batched(STEPS)
        measured = system_latency(result.recorder, burn_in=CRASH_AT * 10)
        rows.append((N, k, measured, scu_system_latency_exact(k)))
    return rows


def test_cor2_crash_latency(run_once, benchmark):
    rows = run_once(benchmark, reproduce_corollary2)

    experiment = Experiment(
        exp_id="COR2",
        title="Latency with k correct processes out of n",
        paper_claim="system latency O(q + s sqrt(k)): at infinity only the "
        "correct processes matter",
    )
    experiment.headers = [
        "n",
        "k correct",
        "measured W after crashes",
        "exact W for k processes",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for _, k, measured, exact in rows:
        assert abs(measured - exact) / exact < 0.08
    # Monotone in k: fewer survivors, faster completions.
    latencies = [row[2] for row in rows]
    assert latencies == sorted(latencies)
