"""Shared benchmark configuration.

Each benchmark module reproduces one paper artifact (figure or theorem —
see DESIGN.md's per-experiment index).  The convention: the expensive
reproduction runs ONCE via ``benchmark.pedantic(..., rounds=1)`` and
prints an :class:`repro.bench.Experiment` record with the series/rows the
paper reports; micro-kernels (chain solves, single phases) benchmark
normally.
"""

import pytest


def once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
