"""FIG4 — Figure 4: distribution of who steps right after process p1.

Paper: conditioned on p1 taking a step, every process appears roughly
equally likely to be scheduled next — local near-uniformity of the
recorded schedules.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.core.scheduler import HardwareLikeScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.stats.compare import total_variation

N_THREADS = 16
STEPS = 300_000
OBSERVED_PID = 1


def successor_distribution(scheduler, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=N_THREADS,
        memory=make_counter_memory(),
        record_schedule=True,
        rng=seed,
    )
    sim.run(STEPS)
    return sim.recorder.schedule.successor_shares(OBSERVED_PID)


def reproduce_figure4():
    return (
        successor_distribution(HardwareLikeScheduler()),
        successor_distribution(UniformStochasticScheduler()),
    )


def test_fig4_successor_shares(run_once, benchmark):
    hardware, uniform = run_once(benchmark, reproduce_figure4)

    experiment = Experiment(
        exp_id="FIG4",
        title=f"Percentage of steps by each process right after p{OBSERVED_PID}",
        paper_claim="any process is roughly equally likely to be scheduled "
        "next (local near-uniformity)",
    )
    pids = list(range(N_THREADS))
    experiment.add_series(
        "hardware-like scheduler",
        pids,
        (hardware * 100).tolist(),
        x_label="next process",
        y_label="% of follow-ups",
    )
    experiment.add_series(
        "uniform stochastic scheduler",
        pids,
        (uniform * 100).tolist(),
        x_label="next process",
        y_label="% of follow-ups",
    )
    experiment.add_note(
        "the hardware-like scheduler over-selects the same process "
        "(quantum runs), mirroring the timer-vs-fai discrepancy the paper "
        "reports in Appendix A.2; the distribution over the other "
        "processes is flat"
    )
    experiment.report()

    ideal = np.full(N_THREADS, 1 / N_THREADS)
    assert total_variation(uniform, ideal) < 0.02
    others = np.delete(hardware, OBSERVED_PID)
    others = others / others.sum()
    assert total_variation(others, np.full(N_THREADS - 1, 1 / (N_THREADS - 1))) < 0.05
