"""LEM7 — Lemma 7 / Lemma 14: individual latency = n x system latency.

Exact computation on both chain families (scan-validate and augmented
counter) plus a simulated confirmation: under the uniform stochastic
scheduler, no process is luckier than any other.
"""

import numpy as np

from repro.algorithms.augmented_counter import (
    augmented_cas_counter,
    make_augmented_counter_memory,
)
from repro.bench.harness import Experiment
from repro.chains.counter import (
    counter_individual_latency_exact,
    counter_system_latency_exact,
)
from repro.chains.scu import (
    scu_individual_latency_exact,
    scu_system_latency_exact,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.core.scu import SCU

N_VALUES = [2, 4, 6, 8]


def reproduce_fairness():
    rows = []
    for n in N_VALUES:
        w = scu_system_latency_exact(n)
        wi = scu_individual_latency_exact(n)
        rows.append(("scan-validate", n, w, wi, wi / (n * w)))
    for n in N_VALUES:
        w = counter_system_latency_exact(n)
        wi = counter_individual_latency_exact(n)
        rows.append(("augmented counter", n, w, wi, wi / (n * w)))
    simulated = []
    m = SCU(0, 1).measure(8, 400_000, rng=0)
    simulated.append(("scan-validate (sim)", 8, m.system_latency,
                      m.mean_individual_latency,
                      m.mean_individual_latency / (8 * m.system_latency)))
    m = measure_latencies(
        augmented_cas_counter(),
        UniformStochasticScheduler(),
        n_processes=8,
        steps=400_000,
        memory=make_augmented_counter_memory(),
        rng=1,
    )
    simulated.append(("augmented counter (sim)", 8, m.system_latency,
                      m.mean_individual_latency,
                      m.mean_individual_latency / (8 * m.system_latency)))
    return rows, simulated


def test_lem7_fairness(run_once, benchmark):
    rows, simulated = run_once(benchmark, reproduce_fairness)

    experiment = Experiment(
        exp_id="LEM7",
        title="Individual latency is exactly n times the system latency",
        paper_claim="W_i = n W for every process (Lemmas 7 and 14): the "
        "expected steps between completions is the same for all processes",
    )
    experiment.headers = ["family", "n", "W", "W_i", "W_i / (n W)"]
    for row in rows + simulated:
        experiment.add_row(*row)
    experiment.report()

    for _, _, _, _, ratio in rows:
        assert ratio == np.clip(ratio, 1 - 1e-9, 1 + 1e-9)
    for _, _, _, _, ratio in simulated:
        assert abs(ratio - 1.0) < 0.1
