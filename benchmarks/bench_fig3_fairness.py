"""FIG3 — Figure 3: percentage of steps taken by each process.

Paper: schedule recordings of a concurrent counter on 16 hardware
threads show each thread takes ~1/n of the steps over long executions.
We reproduce the statistic with the hardware-like synthetic scheduler
(the documented substitution for the paper's Xeon recordings) and with
the uniform stochastic scheduler as the model reference.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.core.scheduler import HardwareLikeScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.stats.compare import chi_square_uniformity, total_variation

N_THREADS = 16
STEPS = 200_000


def record_shares(scheduler, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=N_THREADS,
        memory=make_counter_memory(),
        record_schedule=True,
        rng=seed,
    )
    sim.run(STEPS)
    return sim.recorder.schedule.step_shares()


def reproduce_figure3():
    hardware = record_shares(HardwareLikeScheduler())
    uniform = record_shares(UniformStochasticScheduler())
    return hardware, uniform


def test_fig3_step_shares(run_once, benchmark):
    hardware, uniform = run_once(benchmark, reproduce_figure3)

    experiment = Experiment(
        exp_id="FIG3",
        title="Percentage of steps taken by each process",
        paper_claim="in the long run each of 16 threads takes ~1/16 = 6.25% "
        "of the steps (scheduler is fair)",
    )
    pids = list(range(N_THREADS))
    experiment.add_series(
        "hardware-like scheduler",
        pids,
        (hardware * 100).tolist(),
        x_label="process",
        y_label="% of steps",
    )
    experiment.add_series(
        "uniform stochastic scheduler",
        pids,
        (uniform * 100).tolist(),
        x_label="process",
        y_label="% of steps",
    )
    ideal = np.full(N_THREADS, 1 / N_THREADS)
    experiment.add_note(
        f"TV distance from uniform: hardware-like "
        f"{total_variation(hardware, ideal):.4f}, uniform model "
        f"{total_variation(uniform, ideal):.4f}"
    )
    experiment.report()

    assert total_variation(hardware, ideal) < 0.05
    assert total_variation(uniform, ideal) < 0.02
