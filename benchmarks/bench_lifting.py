"""LIFT — Lemmas 5, 10, 13: the three Markov chain liftings.

For each chain family we verify the ergodic-flow homomorphism
Q_ij = sum_{x in f^-1(i), y in f^-1(j)} Q'_xy numerically, reporting the
worst flow error and the state-space compression the lifting achieves.
"""

from repro.bench.harness import Experiment
from repro.chains.counter import counter_global_chain, counter_individual_chain
from repro.chains.parallel import parallel_individual_chain, parallel_system_chain
from repro.chains.scu import scu_individual_chain, scu_system_chain
from repro.core.lifting import (
    verify_counter_lifting,
    verify_parallel_lifting,
    verify_scu_lifting,
)

CASES = [
    ("Lemma 5 (scan-validate)", "scu", 7, None),
    ("Lemma 10 (parallel q=4)", "parallel", 5, 4),
    ("Lemma 13 (counter)", "counter", 12, None),
]


def reproduce_liftings():
    rows = []
    for title, family, n, q in CASES:
        if family == "scu":
            report = verify_scu_lifting(n)
            fine = scu_individual_chain(n).n_states
            coarse = scu_system_chain(n).n_states
        elif family == "parallel":
            report = verify_parallel_lifting(n, q)
            fine = parallel_individual_chain(n, q).n_states
            coarse = parallel_system_chain(n, q).n_states
        else:
            report = verify_counter_lifting(n)
            fine = counter_individual_chain(n).n_states
            coarse = counter_global_chain(n).n_states
        rows.append(
            (
                title,
                n,
                fine,
                coarse,
                report.is_lifting,
                report.max_flow_error,
                report.max_stationary_error,
            )
        )
    return rows


def test_lifting_all_three(run_once, benchmark):
    rows = run_once(benchmark, reproduce_liftings)

    experiment = Experiment(
        exp_id="LIFT",
        title="Markov chain liftings between individual and system chains",
        paper_claim="each system chain is a lifting of its individual "
        "chain: ergodic flows aggregate exactly over preimages (and, by "
        "Lemma 1, so do stationary probabilities)",
    )
    experiment.headers = [
        "lifting",
        "n",
        "fine states",
        "coarse states",
        "verified",
        "max flow error",
        "max stationary error",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for row in rows:
        assert row[4]
        assert row[5] < 1e-9


def test_lifting_verification_kernel(benchmark):
    """Micro-benchmark: full verification of the counter lifting, n=10."""
    report = benchmark(verify_counter_lifting, 10)
    assert report.is_lifting
