"""EXT2 — Extension: the full distribution of the time between
completions, exactly.

The paper derives expected latencies; the phase-type machinery gives
the whole law.  We print the exact pmf head and tail quantiles of the
completion gap for the scan-validate component and the augmented-CAS
counter, and overlay the simulated histogram at one n.
"""

import numpy as np

from repro.bench.harness import Experiment
from repro.chains.gaps import (
    counter_gap_mean,
    counter_gap_pmf,
    counter_gap_quantile,
    scu_gap_mean,
    scu_gap_pmf,
    scu_gap_quantile,
)

N = 16
PMF_HEAD = 8


def simulated_gap_histogram():
    from repro.core.scheduler import UniformStochasticScheduler
    from repro.core.scu import SCU
    from repro.sim.executor import Simulator

    spec = SCU(0, 1)
    sim = Simulator(
        spec.factory(),
        UniformStochasticScheduler(),
        n_processes=N,
        memory=spec.memory(),
        rng=0,
    )
    sim.run(300_000)
    times = np.asarray(sim.recorder.completion_times)
    gaps = np.diff(times[times > 30_000])
    return np.array(
        [float(np.mean(gaps == k)) for k in range(1, PMF_HEAD + 1)]
    )


def reproduce_gaps():
    scu_pmf = scu_gap_pmf(N, PMF_HEAD)
    counter_pmf = counter_gap_pmf(N, PMF_HEAD)
    simulated = simulated_gap_histogram()
    quantiles = {
        "scu": (scu_gap_quantile(N, 0.5), scu_gap_quantile(N, 0.99)),
        "counter": (counter_gap_quantile(N, 0.5), counter_gap_quantile(N, 0.99)),
    }
    return scu_pmf, counter_pmf, simulated, quantiles


def test_ext2_gap_distributions(run_once, benchmark):
    scu_pmf, counter_pmf, simulated, quantiles = run_once(
        benchmark, reproduce_gaps
    )

    experiment = Experiment(
        exp_id="EXT2",
        title="Exact distribution of the time between completions (n=16)",
        paper_claim="(extension) the paper bounds expectations; the chain "
        "yields the entire phase-type law of the completion gap",
    )
    experiment.headers = [
        "gap k",
        "scan-validate P(gap=k)",
        "simulated",
        "counter P(gap=k)",
    ]
    for k in range(PMF_HEAD):
        experiment.add_row(k + 1, scu_pmf[k], simulated[k], counter_pmf[k])
    experiment.add_note(
        f"scan-validate: mean {scu_gap_mean(N):.3f}, median "
        f"{quantiles['scu'][0]}, p99 {quantiles['scu'][1]}"
    )
    experiment.add_note(
        f"counter: mean {counter_gap_mean(N):.3f}, median "
        f"{quantiles['counter'][0]}, p99 {quantiles['counter'][1]}"
    )
    experiment.report()

    assert np.all(np.abs(scu_pmf - simulated) < 0.02)
    from repro.chains.scu import scu_system_latency_exact

    assert scu_gap_mean(N) == np.clip(
        scu_gap_mean(N),
        scu_system_latency_exact(N) - 1e-9,
        scu_system_latency_exact(N) + 1e-9,
    )
    # Light tails: p99 within an order of magnitude of the mean.
    assert quantiles["scu"][1] < 10 * scu_gap_mean(N)
    assert quantiles["counter"][1] < 10 * counter_gap_mean(N)
