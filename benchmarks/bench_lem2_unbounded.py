"""LEM2 — Lemma 2: the unbounded lock-free Algorithm 1 is not wait-free
with probability >= 1 - 2e^{-n}, even under the uniform stochastic
scheduler.

For each n we run several seeds and record how often a single process
monopolises all completions; the paper's bound predicts monopoly in
essentially every run for moderate n.
"""

import numpy as np

from repro.algorithms.unbounded import make_unbounded_memory, unbounded_lockfree
from repro.bench.harness import Experiment
from repro.core.analysis import unbounded_winner_monopoly_probability
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator

N_VALUES = [4, 8, 12, 16]
TRIALS = 12
STEPS = 40_000


def monopoly_fraction(n):
    monopolies = 0
    for seed in range(TRIALS):
        sim = Simulator(
            unbounded_lockfree(n),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_unbounded_memory(),
            rng=(n, seed),
        )
        result = sim.run(STEPS)
        winners = [p for p in range(n) if result.completions_of(p) > 0]
        if len(winners) == 1:
            monopolies += 1
    return monopolies / TRIALS


def reproduce_lemma2():
    return [(n, monopoly_fraction(n), unbounded_winner_monopoly_probability(n))
            for n in N_VALUES]


def test_lem2_unbounded_not_wait_free(run_once, benchmark):
    rows = run_once(benchmark, reproduce_lemma2)

    experiment = Experiment(
        exp_id="LEM2",
        title="Algorithm 1: one process monopolises the CAS",
        paper_claim="with probability >= 1 - 2e^{-n} the first winner "
        "always wins; the algorithm is not wait-free w.h.p.",
    )
    experiment.headers = ["n", "observed monopoly fraction", "paper lower bound"]
    for row in rows:
        experiment.add_row(*row)
    experiment.add_note(
        "boundedness in Theorem 3 is necessary: this algorithm is "
        "lock-free with *unbounded* minimal progress, and stochasticity "
        "does not save it"
    )
    experiment.report()

    for n, observed, bound in rows:
        assert observed >= min(bound, 0.9)
