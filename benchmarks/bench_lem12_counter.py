"""LEM12 — Lemma 12 / Corollary 3: the augmented-CAS counter.

The expected return time of the winning state is W = Z(n-1), bounded by
2 sqrt(n) and equal to Ramanujan's Q(n) ~ sqrt(pi n / 2); the individual
latency is n W = O(n sqrt(n)).  Exact chain, recurrence, asymptotic and
simulation, side by side.
"""

import numpy as np

from repro.algorithms.augmented_counter import (
    augmented_cas_counter,
    make_augmented_counter_memory,
)
from repro.bench.harness import Experiment
from repro.chains.counter import counter_system_latency_exact
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.stats.ramanujan import counter_return_times, ramanujan_q_asymptotic

N_VALUES = [2, 4, 8, 16, 32, 64]
SIM_N = {4, 16, 64}
STEPS = 150_000


def reproduce_lemma12():
    rows = []
    for n in N_VALUES:
        chain_w = counter_system_latency_exact(n)
        recurrence_w = counter_return_times(n)[-1]
        asymptotic = ramanujan_q_asymptotic(n)
        simulated = float("nan")
        if n in SIM_N:
            m = measure_latencies(
                augmented_cas_counter(),
                UniformStochasticScheduler(),
                n_processes=n,
                steps=STEPS,
                memory=make_augmented_counter_memory(),
                rng=n,
            )
            simulated = m.system_latency
        rows.append(
            (n, chain_w, recurrence_w, asymptotic, 2 * np.sqrt(n), simulated)
        )
    return rows


def test_lem12_counter_return_times(run_once, benchmark):
    rows = run_once(benchmark, reproduce_lemma12)

    experiment = Experiment(
        exp_id="LEM12",
        title="Augmented-CAS counter: W = Z(n-1) = Q(n) <= 2 sqrt(n)",
        paper_claim="the return time of the win state is the Ramanujan "
        "Q-function, asymptotically sqrt(pi n / 2); individual latency "
        "is n W (Corollary 3)",
    )
    experiment.headers = [
        "n",
        "chain W",
        "Z(n-1)",
        "Q asymptotic",
        "2 sqrt(n)",
        "simulated W",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for n, chain_w, recurrence_w, asymptotic, bound, simulated in rows:
        assert abs(chain_w - recurrence_w) < 1e-9
        assert chain_w <= bound
        if n >= 16:
            assert abs(asymptotic - chain_w) / chain_w < 0.02
        if not np.isnan(simulated):
            assert abs(simulated - chain_w) / chain_w < 0.05


def test_lem12_recurrence_kernel(benchmark):
    """Micro-benchmark: the Z recurrence for n = 10^6."""
    z = benchmark(counter_return_times, 1_000_000)
    assert z[-1] <= 2 * np.sqrt(1_000_000)
