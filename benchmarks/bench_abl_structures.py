"""ABL2 — Ablation: does the Theta(sqrt(n)) latency shape hold across
real SCU data structures, not just the counter?

Treiber stack, Michael-Scott queue and the universal construction under
the uniform stochastic scheduler, sweeping n.  The paper analyses the
pattern; this checks the pattern's instances.
"""

import numpy as np

from repro.algorithms.msqueue import (
    MSQueueWorkload,
    make_queue_memory,
    ms_queue_workload,
)
from repro.algorithms.treiber import (
    TreiberWorkload,
    make_stack_memory,
    treiber_workload,
)
from repro.algorithms.universal import sequential_counter, universal_workload
from repro.bench.harness import Experiment
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.stats.estimators import fit_power_law

N_VALUES = [4, 9, 16, 36, 64]
STEPS = 150_000


def latency_sweep(make_factory, make_memory, seed_base):
    out = []
    for n in N_VALUES:
        m = measure_latencies(
            make_factory(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=STEPS,
            memory=make_memory(),
            rng=seed_base + n,
        )
        out.append(m.system_latency)
    return out


def reproduce_structures():
    stack = latency_sweep(
        lambda: treiber_workload(TreiberWorkload(push_fraction=0.6, seed=1)),
        make_stack_memory,
        100,
    )
    queue = latency_sweep(
        lambda: ms_queue_workload(MSQueueWorkload(enqueue_fraction=0.6, seed=1)),
        make_queue_memory,
        200,
    )
    obj = sequential_counter()
    universal = latency_sweep(
        lambda: universal_workload(obj, lambda pid, k: "inc"),
        obj.make_memory,
        300,
    )
    from repro.algorithms.harris_set import (
        SetWorkload,
        harris_set_workload,
        make_set_memory,
    )

    ordered_set = latency_sweep(
        lambda: harris_set_workload(SetWorkload(key_range=64, seed=1)),
        make_set_memory,
        400,
    )
    return stack, queue, universal, ordered_set


def test_abl2_structure_generality(run_once, benchmark):
    stack, queue, universal, ordered_set = run_once(
        benchmark, reproduce_structures
    )

    experiment = Experiment(
        exp_id="ABL2",
        title="Latency shape across SCU-style data structures",
        paper_claim="(extension) the class analysis should cover its "
        "instances: stacks [21], queues [17], universal objects [9]",
    )
    experiment.headers = [
        "n",
        "Treiber stack W",
        "MS queue W",
        "universal W",
        "Harris set W",
    ]
    for i, n in enumerate(N_VALUES):
        experiment.add_row(n, stack[i], queue[i], universal[i], ordered_set[i])
    exps = {}
    for name, series in [
        ("stack", stack),
        ("queue", queue),
        ("universal", universal),
        ("set", ordered_set),
    ]:
        exponent, coeff = fit_power_law(N_VALUES, series)
        exps[name] = exponent
        experiment.add_note(f"{name}: W ~ {coeff:.2f} * n^{exponent:.3f}")
    experiment.add_note(
        "the MS queue and Harris set are not strictly in SCU (multiple "
        "CAS targets + helping) — disjoint-access parallelism flattens "
        "their scaling below the single-hot-spot sqrt(n)"
    )
    experiment.report()

    assert 0.3 < exps["stack"] < 0.65
    assert 0.3 < exps["universal"] < 0.65
    assert 0.1 < exps["queue"] < 0.8
    assert exps["set"] < 0.3  # disjoint keys: far flatter than the hot spot
