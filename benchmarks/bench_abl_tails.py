"""ABL4 — the paper's motivating observation, quantified: per-operation
latency tails of a lock-free stack (cf. reference [1, Figure 6]).

"most operations complete in a timely manner, and the impact of long
worst-case executions on performance is negligible" — under realistic
(stochastic) scheduling.  Under an adversary the same code's tail
carries unbounded starvation.
"""

import numpy as np

from repro.algorithms.treiber import (
    TreiberWorkload,
    make_stack_memory,
    treiber_workload,
)
from repro.bench.harness import Experiment
from repro.core.scheduler import (
    AdversarialScheduler,
    HardwareLikeScheduler,
    UniformStochasticScheduler,
)
from repro.core.tails import tail_summary
from repro.sim.executor import Simulator

N = 8
STEPS = 60_000


def run_tail(scheduler, seed=0):
    sim = Simulator(
        treiber_workload(TreiberWorkload(push_fraction=0.6, seed=1)),
        scheduler,
        n_processes=N,
        memory=make_stack_memory(),
        record_history=True,
        rng=seed,
    )
    result = sim.run(STEPS)
    return tail_summary(result.history, end_time=result.steps_executed)


def reproduce_tails():
    return [
        ("uniform stochastic", run_tail(UniformStochasticScheduler())),
        ("hardware-like", run_tail(HardwareLikeScheduler())),
        ("starvation adversary", run_tail(AdversarialScheduler.starve(0))),
    ]


def test_abl4_latency_tails(run_once, benchmark):
    rows = run_once(benchmark, reproduce_tails)

    experiment = Experiment(
        exp_id="ABL4",
        title="Per-operation latency tails of the Treiber stack",
        paper_claim="(motivating observation, Section 1) under realistic "
        "schedulers long worst-case executions have negligible impact; "
        "the theoretical worst case appears only under adversaries",
    )
    experiment.headers = [
        "scheduler",
        "ops",
        "mean",
        "p50",
        "p99",
        "max",
        "pending at cut-off",
    ]
    for name, summary in rows:
        experiment.add_row(
            name,
            summary.count,
            summary.mean,
            summary.p50,
            summary.p99,
            summary.max,
            summary.pending,
        )
    experiment.report()

    by_name = dict(rows)
    uniform = by_name["uniform stochastic"]
    hardware = by_name["hardware-like"]
    adversary = by_name["starvation adversary"]
    # Light tails under both realistic schedulers...
    assert uniform.p99_over_p50 < 10
    assert hardware.p99_over_p50 < 10
    assert uniform.max < STEPS / 20
    # ...and a starvation-dominated tail under the adversary.
    assert adversary.max >= STEPS - 100
