"""THM4 — Theorem 4: for SCU(q, s) under the uniform stochastic
scheduler, system latency is O(q + s sqrt(n)) and individual latency is
n times that.

The sweep crosses q, s and n; each cell reports the simulated system
latency, the exact chain value where tractable, the paper's bound with
alpha = 4, and the fairness ratio W_i / (n W).

All nine cells run as one heterogeneous ensemble
(:class:`repro.sim.EnsembleSimulator`) — bit-identical to the per-cell
``spec.measure(..., batched=True)`` runs this benchmark used
previously, with the same ``(q, s, n)`` seeds.
"""

import numpy as np

from repro.bench.harness import Experiment
from repro.core.latency import resolve_vector_kernel
from repro.core.scheduler import UniformStochasticScheduler
from repro.core.scu import SCU
from repro.sim import EnsembleReplicate, EnsembleSimulator

SWEEP = [
    (0, 1, 4),
    (0, 1, 16),
    (0, 1, 64),
    (2, 1, 16),
    (8, 1, 16),
    (0, 2, 16),
    (0, 4, 16),
    (4, 2, 16),
    (2, 2, 36),
]
STEPS = 250_000
EXACT_LIMIT = 40_000  # max chain states we are willing to solve exactly


def exact_if_tractable(spec, n):
    from math import comb

    k = spec.q + 2 * spec.s + 1
    if comb(n + k - 1, k - 1) > EXACT_LIMIT:
        return None
    return spec.exact_system_latency(n)


def reproduce_theorem4():
    specs = [SCU(q, s) for q, s, _ in SWEEP]
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                resolve_vector_kernel(spec.factory()),
                n,
                UniformStochasticScheduler(),
                spec.memory(),
                rng=(q, s, n),
            )
            for spec, (q, s, n) in zip(specs, SWEEP)
        ]
    )
    measurements = ensemble.run(STEPS).measurements()
    rows = []
    for spec, (q, s, n), measured in zip(specs, SWEEP, measurements):
        exact = exact_if_tractable(spec, n)
        fairness = measured.mean_individual_latency / (
            n * measured.system_latency
        )
        rows.append(
            (
                f"SCU({q},{s})",
                n,
                measured.system_latency,
                exact if exact is not None else float("nan"),
                spec.predicted_system_latency(n),
                spec.worst_case_system_latency(n),
                fairness,
            )
        )
    return rows


def test_thm4_scu_latency_sweep(run_once, benchmark):
    rows = run_once(benchmark, reproduce_theorem4)

    experiment = Experiment(
        exp_id="THM4",
        title="SCU(q, s) latencies under the uniform stochastic scheduler",
        paper_claim="system latency O(q + s sqrt(n)); individual latency "
        "n times the system latency",
    )
    experiment.headers = [
        "algorithm",
        "n",
        "simulated W",
        "exact chain W",
        "bound q+4s*sqrt(n)",
        "worst case q+sn",
        "mean Wi/(nW)",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.report()

    for _, n, simulated, exact, bound, worst, fairness in rows:
        assert simulated <= bound
        if not np.isnan(exact):
            assert simulated == np.clip(simulated, 0.93 * exact, 1.07 * exact)
        assert abs(fairness - 1.0) < 0.2
        if n >= 16:
            assert simulated < worst


def test_thm4_exact_chain_kernel(benchmark):
    """Micro-benchmark: solving the SCU(2,2) phase chain for n = 8."""
    spec = SCU(2, 2)
    result = benchmark(spec.exact_system_latency, 8)
    assert result > 0
