"""LEM8 — Lemmas 8-9: phase lengths of the iterated balls-into-bins game.

For each start configuration a_i (bins with one ball) we sample phase
lengths and compare with Lemma 8's bound
min(2 alpha n / sqrt(a), 3 alpha n / b^(1/3)); Lemma 9's range dynamics
are summarised by the stationary range occupancy.
"""

import numpy as np

from repro.ballsbins.phases import (
    conditional_phase_lengths,
    phase_length_bound,
    run_phases,
    summarize_phases,
)
from repro.bench.harness import Experiment

N = 100
A_VALUES = [4, 16, 36, 64, 100]
SAMPLES = 4_000


def reproduce_lemma8():
    rows = []
    for a in A_VALUES:
        lengths = conditional_phase_lengths(N, a, SAMPLES, rng=a)
        rows.append(
            (
                a,
                N - a,
                float(lengths.mean()),
                phase_length_bound(N, a, N - a),
                float(np.percentile(lengths, 99)),
            )
        )
    stationary = summarize_phases(run_phases(N, 20_000, rng=0), N)
    return rows, stationary


def test_lem8_phase_lengths(run_once, benchmark):
    rows, stationary = run_once(benchmark, reproduce_lemma8)

    experiment = Experiment(
        exp_id="LEM8",
        title="Iterated balls-into-bins: phase lengths vs Lemma 8's bound",
        paper_claim="E[phase length | a_i, b_i] <= min(2an/sqrt(a_i), "
        "3an/b_i^(1/3)) with alpha >= 4; phases in the third range "
        "(a_i < n/c) are vanishingly rare (Lemma 9)",
    )
    experiment.headers = [
        "a_i",
        "b_i",
        "mean length",
        "Lemma 8 bound",
        "p99 length",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.add_note(
        f"stationary range occupancy (c=10): range1 "
        f"{stationary.range_fractions[1]:.3f}, range2 "
        f"{stationary.range_fractions[2]:.4f}, range3 "
        f"{stationary.range_fractions[3]:.5f}"
    )
    experiment.add_note(
        f"stationary mean phase length {stationary.mean_length:.3f} = the "
        "scan-validate system latency for n=100"
    )
    experiment.report()

    for a, b, mean, bound, p99 in rows:
        assert mean <= bound
    assert stationary.range_fractions[3] < 0.01
    assert stationary.bound_violations / stationary.phases < 0.01


def test_lem8_phase_kernel(benchmark):
    """Micro-benchmark: one phase of the n=100 game."""
    from repro.ballsbins.game import BallsGame

    game = BallsGame(N, rng=0)
    benchmark(game.run_phase)
