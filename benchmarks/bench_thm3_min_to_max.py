"""THM3 — Theorem 3: under any stochastic scheduler, bounded minimal
progress becomes maximal progress with probability 1.

We run the bounded lock-free CAS counter under schedulers with
decreasing thresholds theta and record, for each, the worst observed
per-invocation completion time (the empirical maximal-progress bound);
an adversary (theta = 0) is the control showing the hypothesis is
needed.
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.core.analysis import min_to_max_progress_bound
from repro.core.progress import progress_report
from repro.core.scheduler import (
    AdversarialScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.sim.executor import Simulator

N = 8
STEPS = 120_000


def run_with(scheduler, seed=0):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=N,
        memory=make_counter_memory(),
        record_history=True,
        rng=seed,
    )
    result = sim.run(STEPS)
    report = progress_report(
        result.history, result.steps_executed, starvation_window=STEPS // 2
    )
    return result, report


def reproduce_theorem3():
    rows = []
    schedulers = [
        ("uniform (theta=1/n)", UniformStochasticScheduler(), 1.0 / N),
        (
            "skewed 2:1",
            SkewedStochasticScheduler([2.0] * (N - 1) + [1.0]),
            1.0 / (2 * (N - 1) + 1),
        ),
        (
            "skewed 3:1",
            SkewedStochasticScheduler([3.0] * (N - 1) + [1.0]),
            1.0 / (3 * (N - 1) + 1),
        ),
        ("starvation adversary (theta=0)", AdversarialScheduler.starve(0), 0.0),
    ]
    for name, scheduler, theta in schedulers:
        result, report = run_with(scheduler)
        rows.append(
            (
                name,
                theta,
                report.made_maximal_progress,
                report.maximal_bound,
                len(report.starved),
            )
        )
    return rows


def test_thm3_min_to_max(run_once, benchmark):
    rows = run_once(benchmark, reproduce_theorem3)

    experiment = Experiment(
        exp_id="THM3",
        title="Minimal progress -> maximal progress under stochastic schedulers",
        paper_claim="any theta > 0 scheduler turns the bounded lock-free "
        "counter wait-free w.p. 1 (expected bound (1/theta)^T); theta = 0 "
        "admits starvation",
    )
    experiment.headers = [
        "scheduler",
        "theta",
        "maximal progress",
        "worst completion time",
        "starved processes",
    ]
    for row in rows:
        experiment.add_row(*row)
    theorem = min_to_max_progress_bound(1.0 / N, 2 * N)
    experiment.add_note(
        f"Theorem 3's bound for the uniform case is (1/theta)^T = n^(2n) "
        f"= {theorem:.2e}; the observed bound is dramatically smaller — "
        "the gap Section 6 closes"
    )
    experiment.add_note(
        "stronger skews (10:1 and beyond) keep theta > 0 but push the slow "
        "process's expected completion time beyond any practical horizon — "
        "consistent with the exponential (1/theta)^T bound; see ABL1"
    )
    experiment.report()

    stochastic = [r for r in rows if r[1] > 0]
    adversarial = [r for r in rows if r[1] == 0]
    assert all(r[2] for r in stochastic)
    assert all(not r[2] for r in adversarial)
    assert all(r[4] == 0 for r in stochastic)
    assert rows[0][3] < theorem
