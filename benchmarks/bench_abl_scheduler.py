"""ABL1 — Ablation: how sensitive are the paper's predictions to the
uniform-scheduler assumption?

DESIGN.md calls out the uniform scheduler as the model's strongest
assumption (the paper itself: "our uniform stochastic model is a rough
approximation").  We run the scan-validate counter under progressively
less-uniform schedulers and report the system latency and the fairness
ratio W_i_max / (n W): the latency shape is robust, fairness degrades
with skew.
"""

import zlib

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.harness import Experiment
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import measure_latencies
from repro.core.scheduler import (
    HardwareLikeScheduler,
    LotteryScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)

N = 16
STEPS = 300_000


def reproduce_ablation():
    schedulers = [
        ("uniform", UniformStochasticScheduler()),
        ("hardware-like (quantum 1.5)", HardwareLikeScheduler()),
        ("hardware-like (quantum 4)", HardwareLikeScheduler(mean_quantum=4.0)),
        ("lottery 2:1 tickets", LotteryScheduler([2] * (N // 2) + [1] * (N // 2))),
        ("skewed linear 1..n", SkewedStochasticScheduler(np.arange(1.0, N + 1.0))),
    ]
    rows = []
    for name, scheduler in schedulers:
        m = measure_latencies(
            cas_counter(),
            scheduler,
            n_processes=N,
            steps=STEPS,
            memory=make_counter_memory(),
            # crc32, not hash(): str hashes are randomised per process,
            # which made this table change across regenerations.
            rng=zlib.crc32(name.encode()),
            batched=True,
        )
        rows.append(
            (
                name,
                m.system_latency,
                m.completion_rate,
                m.max_individual_latency / (N * m.system_latency),
            )
        )
    return rows


def test_abl1_scheduler_sensitivity(run_once, benchmark):
    rows = run_once(benchmark, reproduce_ablation)

    exact = scu_system_latency_exact(N)
    experiment = Experiment(
        exp_id="ABL1",
        title="Scheduler-sensitivity ablation (scan-validate counter, n=16)",
        paper_claim="(extension) the uniform model's latency prediction "
        "should degrade gracefully for near-uniform schedulers",
    )
    experiment.headers = [
        "scheduler",
        "system latency",
        "completion rate",
        "max W_i / (n W)",
    ]
    for row in rows:
        experiment.add_row(*row)
    experiment.add_note(f"uniform model's exact prediction: W = {exact:.3f}")
    experiment.add_note(
        "bursty (quantum) schedulers LOWER the system latency — a solo run "
        "finishes read+CAS without interference — while skew inflates the "
        "slowest process's individual latency: practical wait-freedom "
        "needs long-run fairness, not local uniformity"
    )
    experiment.report()

    by_name = {row[0]: row for row in rows}
    assert abs(by_name["uniform"][1] - exact) / exact < 0.05
    # Hardware-like stays within a factor ~2 of the model's prediction.
    assert by_name["hardware-like (quantum 1.5)"][1] < 2 * exact
    # Quantum runs help throughput (latency at or below uniform's).
    assert by_name["hardware-like (quantum 4)"][1] < by_name["uniform"][1] * 1.1
    # Skew hurts the unluckiest process's share.
    assert by_name["skewed linear 1..n"][3] > 1.5
