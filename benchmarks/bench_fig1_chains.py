"""FIG1 — Figure 1: the individual and system chains for two processes.

The paper's figure draws both chains for n = 2 and clusters the
individual chain's states into the system chain's.  We rebuild both
exactly, print the transition structure, and verify the clustering is
the lifting of Lemma 5.
"""

import pytest

from repro.bench.harness import Experiment
from repro.chains.scu import (
    scu_individual_chain,
    scu_lifting,
    scu_lifting_map,
    scu_system_chain,
)


def reproduce_figure1():
    individual = scu_individual_chain(2)
    system = scu_system_chain(2)
    report = scu_lifting(2).verify()
    return individual, system, report


def test_fig1_two_process_chains(run_once, benchmark):
    individual, system, report = run_once(benchmark, reproduce_figure1)

    experiment = Experiment(
        exp_id="FIG1",
        title="Individual and system chains for two processes",
        paper_claim="the system chain is obtained by clustering symmetric "
        "individual-chain states; each transition has probability 1/2",
    )
    experiment.headers = ["chain", "from", "to", "probability"]
    for state in individual.states:
        for target, p in sorted(individual.successors(state).items()):
            experiment.add_row("individual", str(state), str(target), p)
    for state in system.states:
        for target, p in sorted(system.successors(state).items()):
            experiment.add_row("system", str(state), str(target), p)
    experiment.add_note(
        f"lifting verified: flow error {report.max_flow_error:.2e}, "
        f"stationary error {report.max_stationary_error:.2e}"
    )
    experiment.report()

    assert individual.n_states == 3**2 - 1
    assert report.is_lifting
    # Every individual transition has probability 1/2 (n = 2).
    for state in individual.states:
        for p in individual.successors(state).values():
            assert p == pytest.approx(0.5)
    # The clusters in the figure: preimage sizes sum to 8.
    sizes = {
        s: len(scu_lifting(2).preimage(s)) for s in system.states
    }
    assert sum(sizes.values()) == 8


def test_fig1_chain_construction_kernel(benchmark):
    """Micro-benchmark: building + solving the n=6 pair of chains."""

    def kernel():
        return scu_lifting(6).verify().is_lifting

    assert benchmark(kernel)
