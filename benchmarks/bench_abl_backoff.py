"""ABL3 — Ablation: can back-off beat the Theta(sqrt(n)) contention
factor? (the paper's closing open question)

The back-off counter inserts k no-op steps after every failed CAS.  We
sweep k and n and measure the system latency and its sqrt(n) constant.
"""

import numpy as np

from repro.algorithms.backoff_counter import backoff_counter, make_backoff_memory
from repro.bench.harness import Experiment
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler
from repro.stats.estimators import fit_power_law

N_VALUES = [16, 64]
BACKOFFS = [0, 2, 8]
STEPS = 150_000


def reproduce_backoff():
    rows = []
    for n in N_VALUES:
        for k in BACKOFFS:
            m = measure_latencies(
                backoff_counter(k),
                UniformStochasticScheduler(),
                n_processes=n,
                steps=STEPS,
                memory=make_backoff_memory(),
                rng=(n, k),
            )
            rows.append((n, k, m.system_latency, m.system_latency / np.sqrt(n)))
    return rows


def test_abl3_backoff(run_once, benchmark):
    rows = run_once(benchmark, reproduce_backoff)

    experiment = Experiment(
        exp_id="ABL3",
        title="Back-off vs the sqrt(n) contention factor",
        paper_claim="(open question, Section 8) are there algorithms that "
        "avoid the Theta(sqrt(n)) latency factor?",
    )
    experiment.headers = ["n", "backoff k", "system W", "W / sqrt(n)"]
    for row in rows:
        experiment.add_row(*row)
    experiment.add_note(
        "back-off strictly loses in the step-counting model: a waiting "
        "process still consumes scheduled steps, unlike real hardware "
        "where it frees the coherence bus — evidence that within the "
        "model's cost accounting the sqrt(n) factor is intrinsic"
    )
    experiment.report()

    by_n = {}
    for n, k, w, _ in rows:
        by_n.setdefault(n, []).append((k, w))
    for n, series in by_n.items():
        latencies = [w for _, w in sorted(series)]
        # Monotone in k at every n.
        assert latencies == sorted(latencies)
    # The sqrt(n) shape persists at every backoff level.
    for k in BACKOFFS:
        ws = [w for n, kk, w, _ in rows if kk == k]
        exponent, _ = fit_power_law(N_VALUES, ws)
        assert 0.35 < exponent < 0.65
